"""Command-line interface.

Examples::

    python -m repro run --app lv --trace tweet --policy PARD --duration 60
    python -m repro compare --app tm --trace azure --duration 45
    python -m repro sweep --apps lv,tm --policies PARD,Naive --workers 4
    python -m repro scenario run --file scenario.json
    python -m repro scenario sweep --file scenario.json --policies PARD,Naive \
        --seeds 0,1,2 --workers 4
    python -m repro bench --quick
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from .experiments.configs import (
    SYSTEM_FACTORIES,
    known_policies,
    make_policy,
    standard_config,
)
from .experiments.runner import run_experiment, run_multi_scenario, run_scenario
from .experiments.scenario import (
    MultiScenario,
    Scenario,
    SweepSpec,
    load_scenario_file,
    multi_scenario_grid,
    scenario_grid,
)
from .experiments.sweep import (
    SweepEvent,
    merge_summaries,
    parse_shard,
    prune_cache,
    run_sweep,
    scenario_cells,
    shard_indices,
    summaries_text,
    summary_table,
    sweep_grid,
)
from .metrics.export import Artifact, multi_result_tables, scenario_result_tables
from .metrics.report import (
    comparison_table,
    goodput_table,
    per_app_drop_table,
    per_app_table,
    per_module_drop_table,
    policy_descriptions,
)
from .pipeline.applications import get_application, known_applications
from .pipeline.llm_profiles import is_llm_application
from .policies.ablations import ABLATIONS
from .policies.base import DropPolicy
from .policies.registry import ADMISSIONS, POLICIES, known_admissions
from .workload.generators import known_traces


def _make_policy(name: str, seed: int) -> DropPolicy:
    try:
        return make_policy(name, seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    # Choices come from the registries so everything `repro list` shows is
    # accepted; APPS/TRACES remain the paper's canonical grid.
    p.add_argument("--app", choices=known_applications(), default="lv")
    p.add_argument("--trace", choices=known_traces(), default="tweet")
    p.add_argument("--duration", type=float, default=60.0,
                   help="trace duration in simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--utilization", type=float, default=0.9,
                   help="mean load as a fraction of provisioned capacity")
    p.add_argument("--slo", type=float, default=None,
                   help="override the application SLO (seconds)")
    p.add_argument("--no-scaling", action="store_true",
                   help="disable the reactive worker scaler")


def _config(args: argparse.Namespace):
    overrides = dict(
        duration=args.duration,
        seed=args.seed,
        utilization=args.utilization,
        scaling=not args.no_scaling,
    )
    if args.slo is not None:
        overrides["slo"] = args.slo
    return standard_config(args.app, args.trace, **overrides)


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    policy = _make_policy(args.policy, args.seed)
    result = run_experiment(config, policy)
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table({result.policy_name: result},
                           markdown=args.markdown))
    print()
    print(per_module_drop_table({result.policy_name: result},
                                markdown=args.markdown))
    print()
    print(policy_descriptions({result.policy_name: result}))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args)
    results = {}
    names = args.policies.split(",") if args.policies else list(SYSTEM_FACTORIES)
    for name in names:
        results[name] = run_experiment(config, _make_policy(name, args.seed))
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table(results, markdown=args.markdown))
    print()
    print(per_module_drop_table(results, markdown=args.markdown))
    print()
    print(policy_descriptions(results))
    return 0


def _csv(text: str) -> list[str]:
    return [item for item in (s.strip() for s in text.split(",")) if item]


def _parse_seeds(text: str) -> list[int]:
    try:
        return [int(s) for s in _csv(text)]
    except ValueError:
        raise SystemExit(
            f"--seeds must be comma-separated integers, got {text!r}"
        ) from None


def _check_policies(policies: list[str]) -> None:
    unknown = [p for p in policies if p not in known_policies()]
    if unknown:
        raise SystemExit(
            f"unknown policies: {', '.join(unknown)}; "
            f"known: {', '.join(known_policies())}"
        )


def cmd_sweep(args: argparse.Namespace) -> int:
    apps = _csv(args.apps)
    traces = _csv(args.traces)
    policies = _csv(args.policies) or list(SYSTEM_FACTORIES)
    seeds = _parse_seeds(args.seeds) or [0]
    if not apps or not traces:
        raise SystemExit("empty sweep grid: --apps and --traces must be non-empty")
    _check_policies(policies)
    overrides = dict(duration=args.duration, utilization=args.utilization,
                     scaling=not args.no_scaling)
    if args.slo is not None:
        overrides["slo"] = args.slo
    try:
        cells = sweep_grid(apps, traces, policies, seeds=seeds, **overrides)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return _run_cells(cells, args)


def _run_cells(cells, args: argparse.Namespace) -> int:
    """Shared sweep execution/reporting for grid and scenario sweeps."""
    cells = list(cells)
    grid_total = len(cells)
    indices = None
    if getattr(args, "shard", None):
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        indices = shard_indices(grid_total, shard)
        cells = [cells[i] for i in indices]
        if not args.quiet:
            print(f"shard {shard[0]}/{shard[1]}: {len(cells)} of "
                  f"{grid_total} cells", file=sys.stderr)

    def progress(event: SweepEvent) -> None:
        if not args.quiet and event.kind != "start":
            status = {"cached": "cached", "done": "done", "error": "ERROR"}[event.kind]
            # Sharded runs report each cell by its global grid position.
            shown = indices[event.index] if indices is not None else event.index
            print(f"[{shown + 1}/{grid_total}] {event.cell.label()}: "
                  f"{status} ({event.elapsed:.1f}s)", file=sys.stderr)

    if getattr(args, "lean", False):
        from dataclasses import replace

        cells = [replace(cell, lean=True) for cell in cells]
    cache_dir = None if args.no_cache else args.cache_dir
    results = run_sweep(
        cells,
        workers=args.workers,
        cache_dir=cache_dir,
        on_event=progress,
    )
    if args.save_summaries:
        from pathlib import Path

        Path(args.save_summaries).write_text(
            summaries_text(results, indices=indices)
        )
    if args.max_cache_mb is not None:
        # Prune against the configured directory even under --no-cache:
        # the budget bounds what is on disk, not what this run wrote.
        freed = prune_cache(args.cache_dir,
                            int(args.max_cache_mb * 1024 * 1024))
        if freed and not args.quiet:
            print(
                f"pruned {freed / (1024 * 1024):.1f} MiB from "
                f"{args.cache_dir}",
                file=sys.stderr,
            )
    print(summary_table(results, markdown=args.markdown))
    failures = [r for r in results if not r.ok]
    for r in failures:
        print(f"\n--- {r.cell.label()} failed ---\n{r.error}", file=sys.stderr)
    return 1 if failures else 0


def _load_scenario_raw(path: str) -> Scenario | MultiScenario | SweepSpec:
    """Parse any scenario-file schema (auto-detected), not yet validated."""
    try:
        return load_scenario_file(path)
    except FileNotFoundError:
        raise SystemExit(f"scenario file not found: {path}") from None
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise SystemExit(f"invalid scenario file {path}: {exc}") from None


def _load_scenario(path: str) -> Scenario | MultiScenario | SweepSpec:
    """Load and validate any scenario-file schema (auto-detected)."""
    scenario = _load_scenario_raw(path)
    try:
        return scenario.validate()
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"invalid scenario file {path}: {exc}") from None


def cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args.file)
    if isinstance(scenario, SweepSpec):
        raise SystemExit(
            f"{args.file} declares sweep axes; run it with "
            "`repro scenario sweep --file ...`"
        )
    fmt = getattr(args, "format", "table")
    markdown = args.markdown or fmt == "md"
    if isinstance(scenario, MultiScenario):
        result = run_multi_scenario(scenario)
        if fmt in ("csv", "json"):
            _write_result_artifact(scenario, multi_result_tables(result), fmt)
            return 0
        pools = ", ".join(result.pool_ids)
        print(f"shared cluster {scenario.label()}: "
              f"{len(scenario.tenants)} apps over pools [{pools}]")
        print(per_app_table(result.summaries, markdown=markdown))
        print()
        print(per_app_drop_table(result, markdown=markdown))
        reports = {k: v for k, v in result.goodputs.items() if v is not None}
        if reports:
            print("\ngoodput under declared SLO constraints:")
            print(goodput_table(reports, markdown=markdown))
        agg = result.aggregate
        print(f"\naggregate: goodput {agg.goodput:.1f}/s "
              f"drop {agg.drop_rate:.2%} invalid {agg.invalid_rate:.2%}")
        for line in result.failure_log:
            print(f"  {line}")
        return 0
    result = run_scenario(scenario)
    if fmt in ("csv", "json"):
        _write_result_artifact(scenario, scenario_result_tables(result), fmt)
        return 0
    trace = result.trace
    print(f"scenario {scenario.label()}: trace {trace.name} "
          f"({trace.mean_rate:.0f} req/s mean, {trace.duration:.0f}s)")
    print(comparison_table({result.policy_name: result},
                           markdown=markdown))
    print()
    print(per_module_drop_table({result.policy_name: result},
                                markdown=markdown))
    if result.goodput is not None:
        print("\ngoodput under declared SLO constraints:")
        print(goodput_table({result.policy_name: result.goodput},
                            markdown=markdown))
    print()
    print(policy_descriptions({result.policy_name: result}))
    for line in result.failure_log:
        print(f"  {line}")
    return 0


def _write_result_artifact(scenario, tables, fmt: str) -> None:
    """Emit one scenario run's tables as a CSV/JSON artifact on stdout."""
    artifact = Artifact(
        name=scenario.label(),
        tables=tuple(tables),
        meta={
            "scenario": scenario.label(),
            "fingerprint": scenario.fingerprint(),
        },
    )
    sys.stdout.write(
        artifact.csv_text() if fmt == "csv" else artifact.json_text()
    )


def cmd_scenario_render(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args.file)
    if isinstance(scenario, SweepSpec):
        raise SystemExit(
            f"{args.file} declares sweep axes; render one concrete "
            "scenario instead"
        )
    from .studies.render import render_timeline

    try:
        artifact = render_timeline(scenario, window=args.window)
    except (ValueError, KeyError) as exc:
        raise SystemExit(str(exc)) from None
    fmt = args.format
    if fmt == "csv":
        text = artifact.csv_text()
    elif fmt == "json":
        text = artifact.json_text()
    else:
        text = artifact.console_text(markdown=(fmt == "md")) + "\n"
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_study_run(args: argparse.Namespace) -> int:
    from .studies import load_study_file, run_study

    try:
        study = load_study_file(args.file)
    except FileNotFoundError:
        raise SystemExit(f"study file not found: {args.file}") from None
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise SystemExit(f"invalid study file {args.file}: {exc}") from None

    def progress(event: SweepEvent) -> None:
        if not args.quiet and event.kind != "start":
            status = {"cached": "cached", "done": "done",
                      "error": "ERROR"}[event.kind]
            print(f"{event.cell.label()}: {status} ({event.elapsed:.1f}s)",
                  file=sys.stderr)

    cache_dir = None if args.no_cache else args.cache_dir
    try:
        result = run_study(study, workers=args.workers, cache_dir=cache_dir,
                           on_event=progress)
    except (ValueError, KeyError, RuntimeError) as exc:
        raise SystemExit(str(exc)) from None
    print(result.artifact.console_text(markdown=args.markdown))
    print(f"cells: {result.cells_total} total, "
          f"{result.cells_simulated} simulated, "
          f"{result.cells_cached} cached", file=sys.stderr)
    for path in result.artifact.write(args.save_artifacts):
        print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_scenario_sweep(args: argparse.Namespace) -> int:
    scenario = _load_scenario_raw(args.file)
    policies = _csv(args.policies)
    _check_policies(policies)
    seeds = _parse_seeds(args.seeds)
    # A SweepSpec expands its own declared axes first; --policies/--seeds
    # then multiply every grid member.  Overlapping axes are rejected:
    # scenario_grid replaces the policy/seed wholesale, which would
    # silently collapse the file's declared variants into duplicates.
    # Expansion and validation happen exactly once, here (SweepSpec.
    # validate() would expand the grid a second time).
    try:
        if isinstance(scenario, SweepSpec):
            declared = [axis for axis, _ in scenario.axes]
            if policies and any(a == "policy" or a.startswith("policy.")
                                for a in declared):
                raise SystemExit(
                    f"{args.file} already sweeps a policy axis; drop "
                    "--policies or move the policy grid into the file's axes"
                )
            if seeds and "seed" in declared:
                raise SystemExit(
                    f"{args.file} already sweeps 'seed'; drop --seeds or "
                    "move the seed grid into the file's axes"
                )
            bases = scenario.expand()
        else:
            bases = [scenario]
        for base in bases:
            base.validate()
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"invalid scenario file {args.file}: {exc}") from None
    grid = []
    for base in bases:
        if isinstance(base, MultiScenario):
            grid.extend(
                multi_scenario_grid(base, policies=policies, seeds=seeds)
            )
        else:
            grid.extend(scenario_grid(base, policies=policies, seeds=seeds))
    return _run_cells(scenario_cells(grid), args)


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import format_table, run_bench, write_report

    baseline = None
    if args.baseline:
        import json
        from pathlib import Path

        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.baseline}: {exc}") from None
    scenarios_dir = None if args.no_determinism else args.scenarios
    goldens_dir = None if args.no_determinism else args.goldens
    try:
        result, profile_text = run_bench(
            quick=args.quick,
            repeats=args.repeats,
            profile_top=args.profile,
            scenarios_dir=scenarios_dir,
            goldens_dir=goldens_dir,
            baseline=baseline,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if profile_text:
        print(profile_text)
    print(format_table(result))
    if args.out:
        write_report(result, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if not result.deterministic:
        bad = {k: v for k, v in result.determinism.items() if v != "ok"}
        print(f"determinism check FAILED: {bad}", file=sys.stderr)
        return 1
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    from pathlib import Path

    if not args.inputs:
        raise SystemExit(
            "no shard files given: pass the --save-summaries files "
            "written by each `--shard i/N` run"
        )
    texts = []
    for path in args.inputs:
        try:
            texts.append(Path(path).read_text())
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}") from None
    try:
        merged = merge_summaries(texts)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.out:
        Path(args.out).write_text(merged)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(merged)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    if args.llm:
        # One row per application with its profile kind: "llm" when any
        # module resolves to a token-cost LLMProfile, "fixed" otherwise.
        from .metrics.report import format_table

        rows = []
        for name in known_applications():
            try:
                app = get_application(name)
            except (KeyError, ValueError):
                rows.append([name, "?", "-"])
                continue
            kind = "llm" if is_llm_application(app) else "fixed"
            rows.append([name, kind, str(len(app.spec.modules))])
        print(format_table(["application", "profile kind", "modules"], rows))
    else:
        print("applications:", ", ".join(known_applications()))
    print("traces:      ", ", ".join(known_traces()))
    print("systems:     ", ", ".join(SYSTEM_FACTORIES))
    print("ablations:   ", ", ".join(sorted(ABLATIONS)))
    print("admission:   ", ", ".join(known_admissions()))
    if args.params:
        print("\npolicy parameters:")
        for name in sorted(POLICIES):
            info = POLICIES[name]
            decl = ", ".join(p.describe() for p in info.params) or "(none)"
            print(f"  {name}: {decl}")
        print("\nadmission parameters:")
        for name in sorted(ADMISSIONS):
            info = ADMISSIONS[name]
            decl = ", ".join(p.describe() for p in info.params) or "(none)"
            print(f"  {name}: {decl}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARD reproduction: serve inference pipelines under "
                    "drop policies and report goodput metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one policy on one workload")
    _add_workload_args(p_run)
    p_run.add_argument("--policy", default="PARD")
    p_run.add_argument("--markdown", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare policies on a workload")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--policies", default="",
        help="comma-separated policy names (default: the four systems)",
    )
    p_cmp.add_argument("--markdown", action="store_true")
    p_cmp.set_defaults(fn=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run a grid of workloads across a process pool"
    )
    p_sweep.add_argument("--apps", default="lv",
                         help="comma-separated applications")
    p_sweep.add_argument("--traces", default="tweet",
                         help="comma-separated traces")
    p_sweep.add_argument("--policies", default="",
                         help="comma-separated policies (default: the four systems)")
    p_sweep.add_argument("--seeds", default="0", help="comma-separated seeds")
    p_sweep.add_argument("--duration", type=float, default=60.0,
                         help="trace duration in simulated seconds")
    p_sweep.add_argument("--utilization", type=float, default=0.9)
    p_sweep.add_argument("--slo", type=float, default=None)
    p_sweep.add_argument("--no-scaling", action="store_true")
    _add_sweep_exec_args(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_scn = sub.add_parser(
        "scenario",
        help="run or sweep a declarative scenario file (JSON)",
    )
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)

    p_scn_run = scn_sub.add_parser("run", help="run one scenario in-process")
    p_scn_run.add_argument("--file", required=True,
                           help="path to a scenario JSON file")
    p_scn_run.add_argument("--markdown", action="store_true")
    p_scn_run.add_argument(
        "--format", choices=("table", "md", "csv", "json"), default="table",
        help="summary output format (default: the classic text tables; "
             "csv/json emit a structured artifact on stdout)",
    )
    p_scn_run.set_defaults(fn=cmd_scenario_run)

    p_scn_render = scn_sub.add_parser(
        "render",
        help="render a scenario's timeline: declared rate envelope vs "
             "failure schedule vs measured goodput, in fixed windows",
    )
    p_scn_render.add_argument("--file", required=True,
                              help="path to a scenario JSON file")
    p_scn_render.add_argument("--window", type=float, default=1.0,
                              help="timeline bin width in seconds")
    p_scn_render.add_argument(
        "--format", choices=("table", "md", "csv", "json"), default="table",
    )
    p_scn_render.add_argument("--out", default=None, metavar="PATH",
                              help="write here instead of stdout")
    p_scn_render.set_defaults(fn=cmd_scenario_render)

    p_scn_sweep = scn_sub.add_parser(
        "sweep", help="sweep one scenario over policies x seeds"
    )
    p_scn_sweep.add_argument("--file", required=True,
                             help="path to a scenario JSON file")
    p_scn_sweep.add_argument(
        "--policies", default="",
        help="comma-separated policies (default: the scenario's own)",
    )
    p_scn_sweep.add_argument(
        "--seeds", default="",
        help="comma-separated seeds (default: the scenario's own)",
    )
    _add_sweep_exec_args(p_scn_sweep)
    p_scn_sweep.set_defaults(fn=cmd_scenario_sweep)

    p_study = sub.add_parser(
        "study",
        help="run a declarative study file (interference grid, capacity "
             "planner or chaos schedule) and export byte-stable artifacts",
    )
    study_sub = p_study.add_subparsers(dest="study_command", required=True)
    p_study_run = study_sub.add_parser(
        "run", help="run one study and write console + CSV + JSON artifacts"
    )
    p_study_run.add_argument("file", help="path to a study JSON file")
    p_study_run.add_argument("--workers", type=int, default=None,
                             help="process-pool size (default: CPU count)")
    p_study_run.add_argument("--cache-dir", default=".sweep_cache",
                             help="on-disk sweep-cell cache location")
    p_study_run.add_argument("--no-cache", action="store_true",
                             help="always recompute, never read or write "
                                  "the cache")
    p_study_run.add_argument("--quiet", action="store_true",
                             help="suppress per-cell progress on stderr")
    p_study_run.add_argument("--markdown", action="store_true")
    p_study_run.add_argument(
        "--save-artifacts", nargs="?", const="artifacts", default="artifacts",
        metavar="DIR",
        help="directory for the <study>.json/<study>.csv artifacts "
             "(default: artifacts/)",
    )
    p_study_run.set_defaults(fn=cmd_study_run)

    p_bench = sub.add_parser(
        "bench",
        help="time the canonical simulation workloads and verify the "
             "golden determinism fingerprints",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="scaled-down workloads, one run each (CI mode)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="timed runs per workload, best kept "
                              "(default: 3, or 1 with --quick)")
    p_bench.add_argument("--profile", type=int, default=0, metavar="N",
                         help="also cProfile one pass and print the top N "
                              "functions by cumulative time")
    p_bench.add_argument("--out", default="BENCH_10.json", metavar="PATH",
                         help="write the JSON report here (default: "
                              "BENCH_10.json; empty string to skip)")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="earlier report to compute the speedup against")
    p_bench.add_argument("--scenarios", default="examples/scenarios",
                         help="scenario files for the determinism check")
    p_bench.add_argument("--goldens", default="benchmarks/goldens",
                         help="committed golden summaries directory")
    p_bench.add_argument("--no-determinism", action="store_true",
                         help="skip the golden-fingerprint determinism check")
    p_bench.set_defaults(fn=cmd_bench)

    p_merge = sub.add_parser(
        "merge",
        help="merge per-shard --save-summaries files back into the "
             "serial-order summaries file (byte-identical to an unsharded "
             "run)",
    )
    p_merge.add_argument("inputs", nargs="*",
                         help="shard summaries files written by "
                              "`--shard i/N --save-summaries`")
    p_merge.add_argument("-o", "--out", default=None, metavar="PATH",
                         help="output path (default: stdout)")
    p_merge.set_defaults(fn=cmd_merge)

    p_list = sub.add_parser(
        "list", help="list registered applications, traces and policies"
    )
    p_list.add_argument(
        "--params", action="store_true",
        help="also print each policy's declared parameter schema",
    )
    p_list.add_argument(
        "--llm", action="store_true",
        help="show applications as a table with their profile kind "
             "(llm vs fixed-duration)",
    )
    p_list.set_defaults(fn=cmd_list)
    return parser


def _nonnegative_mb(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _add_sweep_exec_args(p: argparse.ArgumentParser) -> None:
    """Pool/cache/reporting flags shared by grid and scenario sweeps."""
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: CPU count)")
    p.add_argument("--cache-dir", default=".sweep_cache",
                   help="on-disk result cache location")
    p.add_argument("--no-cache", action="store_true",
                   help="always recompute, never read or write the cache")
    p.add_argument("--max-cache-mb", type=_nonnegative_mb, default=None,
                   help="prune oldest cache entries beyond this size after "
                        "the sweep")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-cell progress on stderr")
    p.add_argument("--markdown", action="store_true")
    p.add_argument("--save-summaries", default=None, metavar="PATH",
                   help="write deterministic per-cell summaries as JSON "
                        "(byte-identical across worker counts)")
    p.add_argument("--lean", action="store_true",
                   help="collect summary counters only (no per-request "
                        "records); faster, but per-module drop tables and "
                        "latency analyses are unavailable")
    p.add_argument("--shard", default=None, metavar="I/N",
                   help="run only the i-th of N deterministic grid shards "
                        "(1-based round-robin); --save-summaries then "
                        "writes a shard file for `repro merge`")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
