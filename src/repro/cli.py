"""Command-line interface.

Examples::

    python -m repro run --app lv --trace tweet --policy PARD --duration 60
    python -m repro compare --app tm --trace azure --duration 45
    python -m repro sweep --apps lv,tm --policies PARD,Naive --workers 4
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from .experiments.configs import (
    APPS,
    SYSTEM_FACTORIES,
    TRACES,
    known_policies,
    make_policy,
    standard_config,
)
from .experiments.runner import run_experiment
from .experiments.sweep import SweepEvent, run_sweep, summary_table, sweep_grid
from .metrics.report import comparison_table, per_module_drop_table
from .policies.ablations import ABLATIONS
from .policies.base import DropPolicy


def _make_policy(name: str, seed: int) -> DropPolicy:
    try:
        return make_policy(name, seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", choices=APPS, default="lv")
    p.add_argument("--trace", choices=TRACES, default="tweet")
    p.add_argument("--duration", type=float, default=60.0,
                   help="trace duration in simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--utilization", type=float, default=0.9,
                   help="mean load as a fraction of provisioned capacity")
    p.add_argument("--slo", type=float, default=None,
                   help="override the application SLO (seconds)")
    p.add_argument("--no-scaling", action="store_true",
                   help="disable the reactive worker scaler")


def _config(args: argparse.Namespace):
    overrides = dict(
        duration=args.duration,
        seed=args.seed,
        utilization=args.utilization,
        scaling=not args.no_scaling,
    )
    if args.slo is not None:
        overrides["slo"] = args.slo
    return standard_config(args.app, args.trace, **overrides)


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    policy = _make_policy(args.policy, args.seed)
    result = run_experiment(config, policy)
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table({result.policy_name: result},
                           markdown=args.markdown))
    print()
    print(per_module_drop_table({result.policy_name: result},
                                markdown=args.markdown))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args)
    results = {}
    names = args.policies.split(",") if args.policies else list(SYSTEM_FACTORIES)
    for name in names:
        results[name] = run_experiment(config, _make_policy(name, args.seed))
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table(results, markdown=args.markdown))
    print()
    print(per_module_drop_table(results, markdown=args.markdown))
    return 0


def _csv(text: str) -> list[str]:
    return [item for item in (s.strip() for s in text.split(",")) if item]


def cmd_sweep(args: argparse.Namespace) -> int:
    apps = _csv(args.apps)
    traces = _csv(args.traces)
    policies = _csv(args.policies) or list(SYSTEM_FACTORIES)
    try:
        seeds = [int(s) for s in _csv(args.seeds)] or [0]
    except ValueError:
        raise SystemExit(
            f"--seeds must be comma-separated integers, got {args.seeds!r}"
        ) from None
    if not apps or not traces:
        raise SystemExit("empty sweep grid: --apps and --traces must be non-empty")
    unknown = [p for p in policies if p not in known_policies()]
    if unknown:
        raise SystemExit(
            f"unknown policies: {', '.join(unknown)}; "
            f"known: {', '.join(known_policies())}"
        )
    overrides = dict(duration=args.duration, utilization=args.utilization,
                     scaling=not args.no_scaling)
    if args.slo is not None:
        overrides["slo"] = args.slo
    try:
        cells = sweep_grid(apps, traces, policies, seeds=seeds, **overrides)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    def progress(event: SweepEvent) -> None:
        if not args.quiet and event.kind != "start":
            status = {"cached": "cached", "done": "done", "error": "ERROR"}[event.kind]
            print(f"[{event.index + 1}/{event.total}] {event.cell.label()}: "
                  f"{status} ({event.elapsed:.1f}s)", file=sys.stderr)

    results = run_sweep(
        cells,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        on_event=progress,
    )
    print(summary_table(results, markdown=args.markdown))
    failures = [r for r in results if not r.ok]
    for r in failures:
        print(f"\n--- {r.cell.label()} failed ---\n{r.error}", file=sys.stderr)
    return 1 if failures else 0


def cmd_list(args: argparse.Namespace) -> int:
    print("applications:", ", ".join(APPS))
    print("traces:      ", ", ".join(TRACES))
    print("systems:     ", ", ".join(SYSTEM_FACTORIES))
    print("ablations:   ", ", ".join(sorted(ABLATIONS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARD reproduction: serve inference pipelines under "
                    "drop policies and report goodput metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one policy on one workload")
    _add_workload_args(p_run)
    p_run.add_argument("--policy", default="PARD")
    p_run.add_argument("--markdown", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare policies on a workload")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--policies", default="",
        help="comma-separated policy names (default: the four systems)",
    )
    p_cmp.add_argument("--markdown", action="store_true")
    p_cmp.set_defaults(fn=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run a grid of workloads across a process pool"
    )
    p_sweep.add_argument("--apps", default="lv",
                         help="comma-separated applications")
    p_sweep.add_argument("--traces", default="tweet",
                         help="comma-separated traces")
    p_sweep.add_argument("--policies", default="",
                         help="comma-separated policies (default: the four systems)")
    p_sweep.add_argument("--seeds", default="0", help="comma-separated seeds")
    p_sweep.add_argument("--duration", type=float, default=60.0,
                         help="trace duration in simulated seconds")
    p_sweep.add_argument("--utilization", type=float, default=0.9)
    p_sweep.add_argument("--slo", type=float, default=None)
    p_sweep.add_argument("--no-scaling", action="store_true")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: CPU count)")
    p_sweep.add_argument("--cache-dir", default=".sweep_cache",
                         help="on-disk result cache location")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always recompute, never read or write the cache")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress on stderr")
    p_sweep.add_argument("--markdown", action="store_true")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_list = sub.add_parser("list", help="list apps, traces and policies")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
