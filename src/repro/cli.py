"""Command-line interface.

Examples::

    python -m repro run --app lv --trace tweet --policy PARD --duration 60
    python -m repro compare --app tm --trace azure --duration 45
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from .experiments.configs import (
    APPS,
    SYSTEM_FACTORIES,
    TRACES,
    standard_config,
)
from .experiments.runner import run_experiment
from .metrics.report import comparison_table, per_module_drop_table
from .policies.ablations import ABLATIONS
from .policies.base import DropPolicy
from .policies.clipper import ClipperPlusPlusPolicy
from .policies.naive import NaivePolicy
from .policies.nexus import NexusPolicy


def _make_policy(name: str, seed: int) -> DropPolicy:
    builders = {
        "Nexus": lambda: NexusPolicy(),
        "Clipper++": lambda: ClipperPlusPlusPolicy(),
        "Naive": lambda: NaivePolicy(),
    }
    if name in builders:
        return builders[name]()
    if name in ABLATIONS:
        return ABLATIONS[name](seed=seed)
    known = sorted(set(builders) | set(ABLATIONS))
    raise SystemExit(f"unknown policy {name!r}; known: {', '.join(known)}")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", choices=APPS, default="lv")
    p.add_argument("--trace", choices=TRACES, default="tweet")
    p.add_argument("--duration", type=float, default=60.0,
                   help="trace duration in simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--utilization", type=float, default=0.9,
                   help="mean load as a fraction of provisioned capacity")
    p.add_argument("--slo", type=float, default=None,
                   help="override the application SLO (seconds)")
    p.add_argument("--no-scaling", action="store_true",
                   help="disable the reactive worker scaler")


def _config(args: argparse.Namespace):
    overrides = dict(
        duration=args.duration,
        seed=args.seed,
        utilization=args.utilization,
        scaling=not args.no_scaling,
    )
    if args.slo is not None:
        overrides["slo"] = args.slo
    return standard_config(args.app, args.trace, **overrides)


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    policy = _make_policy(args.policy, args.seed)
    result = run_experiment(config, policy)
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table({result.policy_name: result},
                           markdown=args.markdown))
    print()
    print(per_module_drop_table({result.policy_name: result},
                                markdown=args.markdown))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args)
    results = {}
    names = args.policies.split(",") if args.policies else list(SYSTEM_FACTORIES)
    for name in names:
        results[name] = run_experiment(config, _make_policy(name, args.seed))
    print(f"{args.app} x {args.trace} for {args.duration:.0f}s "
          f"(base rate ~{config.resolve_base_rate():.0f} req/s)")
    print(comparison_table(results, markdown=args.markdown))
    print()
    print(per_module_drop_table(results, markdown=args.markdown))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("applications:", ", ".join(APPS))
    print("traces:      ", ", ".join(TRACES))
    print("systems:     ", ", ".join(SYSTEM_FACTORIES))
    print("ablations:   ", ", ".join(sorted(ABLATIONS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARD reproduction: serve inference pipelines under "
                    "drop policies and report goodput metrics.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one policy on one workload")
    _add_workload_args(p_run)
    p_run.add_argument("--policy", default="PARD")
    p_run.add_argument("--markdown", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare policies on a workload")
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--policies", default="",
        help="comma-separated policy names (default: the four systems)",
    )
    p_cmp.add_argument("--markdown", action="store_true")
    p_cmp.set_defaults(fn=cmd_compare)

    p_list = sub.add_parser("list", help="list apps, traces and policies")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
