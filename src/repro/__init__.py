"""PARD reproduction: proactive request dropping for inference pipelines.

Public API quick tour::

    from repro import (
        PardPolicy, NexusPolicy, ClipperPlusPlusPolicy, NaivePolicy,
        get_application, get_trace,
        ExperimentConfig, run_experiment, summarize,
    )

    config = ExperimentConfig(app="lv", trace="tweet", base_rate=60, duration=120)
    result = run_experiment(config, PardPolicy())
    print(result.summary)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from .core import (
    BatchWaitEstimator,
    BudgetMode,
    MinMaxHeap,
    PardPolicy,
    PriorityMode,
    StatePlanner,
    SubMode,
    WaitMode,
)
from .experiments import (
    AppSpec,
    ExperimentConfig,
    ExperimentResult,
    Scenario,
    ScalingSpec,
    TraceSpec,
    compare_policies,
    run_experiment,
    run_scenario,
    standard_config,
)
from .metrics import MetricsCollector, Summary, summarize
from .pipeline import Application, ModelProfile, PipelineSpec, get_application
from .policies import (
    ClipperPlusPlusPolicy,
    DropPolicy,
    NaivePolicy,
    NexusPolicy,
    OverloadControlPolicy,
    ParamSpec,
    PolicySpec,
    make_ablation,
    make_policy,
)
from .simulation import Cluster, Request, Simulator
from .workload import Trace, get_trace

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "Application",
    "BatchWaitEstimator",
    "BudgetMode",
    "ClipperPlusPlusPolicy",
    "Cluster",
    "DropPolicy",
    "ExperimentConfig",
    "ExperimentResult",
    "MetricsCollector",
    "MinMaxHeap",
    "ModelProfile",
    "NaivePolicy",
    "NexusPolicy",
    "OverloadControlPolicy",
    "ParamSpec",
    "PardPolicy",
    "PolicySpec",
    "PipelineSpec",
    "PriorityMode",
    "Request",
    "Scenario",
    "ScalingSpec",
    "Simulator",
    "StatePlanner",
    "SubMode",
    "Summary",
    "Trace",
    "TraceSpec",
    "WaitMode",
    "compare_policies",
    "get_application",
    "get_trace",
    "make_ablation",
    "make_policy",
    "run_experiment",
    "run_scenario",
    "standard_config",
    "summarize",
    "__version__",
]
