"""RAG workflow case study (paper §7)."""

from .pipeline import (
    AsyncStage,
    BatchWindowStage,
    RagConfig,
    RagPipeline,
    RagRequest,
    RagStatus,
    SlotStage,
)
from .policies import (
    RAG_POLICIES,
    PredictRagPolicy,
    ProactiveRagPolicy,
    RagPolicy,
    ReactiveRagPolicy,
)

__all__ = [
    "AsyncStage",
    "BatchWindowStage",
    "PredictRagPolicy",
    "ProactiveRagPolicy",
    "RAG_POLICIES",
    "RagConfig",
    "RagPipeline",
    "RagPolicy",
    "RagRequest",
    "RagStatus",
    "ReactiveRagPolicy",
    "SlotStage",
]
