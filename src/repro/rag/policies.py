"""Drop policies for the RAG case study (§7, Figure 15a).

* ``reactive`` — drops a request only after it has already exceeded the
  TTFT SLO (the baseline in Figure 15a).
* ``proactive`` — PARD's idea adapted to RAG: estimate the remaining
  latency per stage (recent averages for rewrite and search, windowed
  batching for retrieve, prefill profiling from input length for
  generate) and drop when elapsed + estimate exceeds the SLO.
* ``predict`` — proactive plus *oracle* knowledge of the rewrite output
  length (the paper obtains it from offline temperature-0 runs), removing
  the dominant estimation error.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline import RagPipeline, RagRequest


class RagPolicy(abc.ABC):
    """Base class: consulted at stage admission and slot grant."""

    name = "base"

    def bind(self, pipeline: "RagPipeline") -> None:
        self.pipeline = pipeline

    @abc.abstractmethod
    def should_drop(
        self, request: "RagRequest", stage: str, pipeline: "RagPipeline"
    ) -> bool:
        """True to drop ``request`` before it enters/occupies ``stage``."""


class ReactiveRagPolicy(RagPolicy):
    """Drop only after the TTFT SLO has already been violated."""

    name = "reactive"

    def should_drop(self, request, stage, pipeline) -> bool:
        return request.elapsed(pipeline.sim.now) > pipeline.config.ttft_slo


class ProactiveRagPolicy(RagPolicy):
    """PARD-style proactive dropping with per-stage latency estimation."""

    name = "proactive"
    oracle_rewrite = False

    def __init__(self, history: int = 200) -> None:
        self._rewrite_hist: deque[float] = deque(maxlen=history)
        self._search_hist: deque[float] = deque(maxlen=history)

    def bind(self, pipeline: "RagPipeline") -> None:
        super().bind(pipeline)
        self._cfg = pipeline.config

    # -- per-stage estimates ----------------------------------------------------

    def _rewrite_estimate(self, request: "RagRequest", pipeline) -> float:
        c = self._cfg
        if self.oracle_rewrite:
            service = c.rewrite_base + c.rewrite_per_token * request.rewrite_tokens
        elif self._rewrite_hist:
            service = float(np.mean(self._rewrite_hist))
        else:
            # Expected lognormal output length under the profiled model.
            expected_tokens = float(
                np.exp(c.rewrite_tokens_mu + c.rewrite_tokens_sigma**2 / 2)
            )
            service = c.rewrite_base + c.rewrite_per_token * expected_tokens
        queue_penalty = (
            pipeline.rewrite.queue_length() / pipeline.rewrite.slots
        ) * service
        return service + queue_penalty

    def _branch_estimate(self, pipeline) -> float:
        c = self._cfg
        retrieve = c.retrieve_window / 2 + c.retrieve_base + c.retrieve_per_item * 8
        if self._search_hist:
            search = float(np.mean(self._search_hist))
        else:
            search = c.search_median
        return max(retrieve, search)

    def _generate_estimate(self, request: "RagRequest", pipeline) -> float:
        c = self._cfg
        tokens = request.query_tokens + request.rewrite_tokens
        tokens += request.context_tokens or c.context_tokens_mean
        service = c.generate_base + c.generate_per_token * tokens
        queue_penalty = (
            pipeline.generate.queue_length() / pipeline.generate.slots
        ) * service
        return service + queue_penalty

    # -- decision ------------------------------------------------------------

    def should_drop(self, request, stage, pipeline) -> bool:
        self._observe(pipeline)
        now = pipeline.sim.now
        remaining: float
        if stage == "rewrite":
            remaining = (
                self._rewrite_estimate(request, pipeline)
                + self._branch_estimate(pipeline)
                + self._generate_estimate(request, pipeline)
            )
        elif stage == "generate":
            remaining = self._generate_estimate(request, pipeline)
        else:
            remaining = self._branch_estimate(pipeline)
        return request.elapsed(now) + remaining > pipeline.config.ttft_slo

    def _observe(self, pipeline) -> None:
        """Fold freshly completed stage latencies into the histories."""
        for hist, stage in (
            (self._rewrite_hist, pipeline.rewrite),
            (self._search_hist, pipeline.search),
        ):
            new = len(stage.latencies) - len(hist)
            if new > 0:
                hist.extend(stage.latencies[-new:])


class PredictRagPolicy(ProactiveRagPolicy):
    """Proactive with oracle rewrite-output-length knowledge."""

    name = "predict"
    oracle_rewrite = True


RAG_POLICIES = {
    "reactive": ReactiveRagPolicy,
    "proactive": ProactiveRagPolicy,
    "predict": PredictRagPolicy,
}
