"""RAG workflow simulator (paper §7, Table 2).

Reproduces the case-study pipeline: ``rewrite -> {retrieve || search} ->
generate`` with a time-to-first-token (TTFT) SLO.  The stages deliberately
exhibit the §7 latency shapes that distinguish RAG from DNN pipelines:

* **rewrite** (Llama-3-8B, continuous batching) — no batch wait; service
  time scales with the *output* length, which is unknown upfront and highly
  variable (lognormal).
* **retrieve** (FAISS) — windowed batched execution, cheap and predictable.
* **search** (web API, multithreaded) — unbounded concurrency but heavy
  lognormal tail from network delays.
* **generate** (Llama-3-8B, continuous batching) — TTFT ends at the end of
  prefill, whose duration scales with the *input* length (query + rewrite
  output + retrieved context), so it is predictable from observable state.

The substitution preserves exactly the properties §7's conclusions rest on;
see DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..simulation.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .policies import RagPolicy


class RagStatus(enum.Enum):
    IN_FLIGHT = "in_flight"
    COMPLETED = "completed"  # reached first token (may violate TTFT SLO)
    DROPPED = "dropped"


@dataclass
class RagRequest:
    """One query flowing through the RAG workflow."""

    rid: int
    sent_at: float
    query_tokens: int
    rewrite_tokens: int  # output length; hidden from non-oracle policies
    context_tokens: int = 0  # retrieved context size
    status: RagStatus = RagStatus.IN_FLIGHT
    finished_at: float | None = None
    dropped_at_stage: str | None = None
    stage_times: dict[str, tuple[float, float]] = field(default_factory=dict)
    _joins: int = 0

    def elapsed(self, now: float) -> float:
        return now - self.sent_at

    def record_stage(self, stage: str, start: float, end: float) -> None:
        self.stage_times[stage] = (start, end)

    def stage_latency(self, stage: str) -> float:
        start, end = self.stage_times[stage]
        return end - start


@dataclass(frozen=True)
class RagConfig:
    """Workload and latency-model parameters (defaults mirror Table 2)."""

    ttft_slo: float = 5.0
    # rewrite: Llama-3-8B continuous batching.
    rewrite_slots: int = 16
    rewrite_base: float = 0.08
    rewrite_per_token: float = 0.025
    rewrite_tokens_mu: float = 3.4  # lognormal of output length (~30 tokens)
    rewrite_tokens_sigma: float = 0.9
    # retrieve: FAISS windowed batching.
    retrieve_window: float = 0.050
    retrieve_base: float = 0.030
    retrieve_per_item: float = 0.004
    # search: long-tail web API.
    search_median: float = 0.60
    search_sigma: float = 0.85
    # generate: prefill only (TTFT), continuous batching.
    generate_slots: int = 16
    generate_base: float = 0.06
    generate_per_token: float = 0.0022
    query_tokens_mean: int = 24
    context_tokens_mean: int = 420


class SlotStage:
    """Continuous-batching stage: ``slots`` concurrent sequences, FIFO queue.

    There is no batch wait (the §7 observation): a request either grabs a
    free slot immediately or queues until one frees up.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        slots: int,
        service_time: Callable[[RagRequest], float],
        on_done: Callable[[RagRequest], None],
        on_grant: Callable[[RagRequest, "SlotStage"], bool],
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.sim = sim
        self.name = name
        self.slots = slots
        self.busy = 0
        self.queue: list[RagRequest] = []
        self.service_time = service_time
        self.on_done = on_done
        self.on_grant = on_grant
        self.latencies: list[float] = []  # queue + service, for Figure 15b

    def submit(self, request: RagRequest) -> None:
        self.queue.append(request)
        self._try_start()

    def queue_length(self) -> int:
        return len(self.queue)

    def _try_start(self) -> None:
        while self.busy < self.slots and self.queue:
            request = self.queue.pop(0)
            if request.status is not RagStatus.IN_FLIGHT:
                continue  # dropped while queued (sibling branch / policy)
            if not self.on_grant(request, self):
                continue  # the policy dropped it at slot grant
            self.busy += 1
            start = self.sim.now
            duration = self.service_time(request)
            self.sim.schedule_after(duration, self._finish, request, start)

    def _finish(self, request: RagRequest, start: float) -> None:
        self.busy -= 1
        end = self.sim.now
        request.record_stage(self.name, start, end)
        self.latencies.append(end - start)
        if request.status is RagStatus.IN_FLIGHT:
            self.on_done(request)
        self._try_start()


class BatchWindowStage:
    """Windowed batching stage (FAISS retrieve): collect for ``window``
    seconds, then execute the whole batch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        window: float,
        base: float,
        per_item: float,
        on_done: Callable[[RagRequest], None],
    ) -> None:
        self.sim = sim
        self.name = name
        self.window = window
        self.base = base
        self.per_item = per_item
        self.on_done = on_done
        self.forming: list[RagRequest] = []
        self.latencies: list[float] = []

    def submit(self, request: RagRequest) -> None:
        self.forming.append(request)
        if len(self.forming) == 1:
            self.sim.schedule_after(self.window, self._flush)

    def _flush(self) -> None:
        batch = [r for r in self.forming if r.status is RagStatus.IN_FLIGHT]
        self.forming = []
        if not batch:
            return
        start = self.sim.now
        duration = self.base + self.per_item * len(batch)
        self.sim.schedule_after(duration, self._finish, batch, start)

    def _finish(self, batch: list[RagRequest], start: float) -> None:
        end = self.sim.now
        for request in batch:
            request.record_stage(self.name, start, end)
            self.latencies.append(end - start)
            if request.status is RagStatus.IN_FLIGHT:
                self.on_done(request)


class AsyncStage:
    """Unbounded-concurrency stage (web search over a thread pool)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: Callable[[RagRequest], float],
        on_done: Callable[[RagRequest], None],
    ) -> None:
        self.sim = sim
        self.name = name
        self.latency = latency
        self.on_done = on_done
        self.latencies: list[float] = []

    def submit(self, request: RagRequest) -> None:
        start = self.sim.now
        self.sim.schedule_after(self.latency(request), self._finish, request, start)

    def _finish(self, request: RagRequest, start: float) -> None:
        end = self.sim.now
        request.record_stage(self.name, start, end)
        self.latencies.append(end - start)
        if request.status is RagStatus.IN_FLIGHT:
            self.on_done(request)


class RagPipeline:
    """The §7 four-stage RAG workflow under a pluggable drop policy."""

    STAGES = ("rewrite", "retrieve", "search", "generate")

    def __init__(
        self,
        policy: "RagPolicy",
        config: RagConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or RagConfig()
        self.policy = policy
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.requests: list[RagRequest] = []
        self._next_rid = 0
        c = self.config
        self.rewrite = SlotStage(
            self.sim, "rewrite", c.rewrite_slots,
            self._rewrite_time, self._after_rewrite, self._grant,
        )
        self.retrieve = BatchWindowStage(
            self.sim, "retrieve", c.retrieve_window, c.retrieve_base,
            c.retrieve_per_item, self._after_branch,
        )
        self.search = AsyncStage(
            self.sim, "search", self._search_time, self._after_branch
        )
        self.generate = SlotStage(
            self.sim, "generate", c.generate_slots,
            self._generate_time, self._after_generate, self._grant,
        )
        policy.bind(self)

    # -- latency models ------------------------------------------------------

    def _rewrite_time(self, r: RagRequest) -> float:
        c = self.config
        return c.rewrite_base + c.rewrite_per_token * r.rewrite_tokens

    def _search_time(self, r: RagRequest) -> float:
        c = self.config
        return float(
            self.rng.lognormal(np.log(c.search_median), c.search_sigma)
        )

    def _generate_time(self, r: RagRequest) -> float:
        c = self.config
        tokens = r.query_tokens + r.rewrite_tokens + r.context_tokens
        return c.generate_base + c.generate_per_token * tokens

    # -- request flow --------------------------------------------------------

    def submit_at(self, t: float) -> None:
        """Schedule a client query at simulation time ``t``."""
        c = self.config
        request = RagRequest(
            rid=self._next_rid,
            sent_at=t,
            query_tokens=max(4, int(self.rng.normal(c.query_tokens_mean, 6))),
            rewrite_tokens=max(
                2, int(self.rng.lognormal(c.rewrite_tokens_mu, c.rewrite_tokens_sigma))
            ),
        )
        self._next_rid += 1
        self.requests.append(request)
        self.sim.schedule(t, self._enter, request)

    def _enter(self, request: RagRequest) -> None:
        if self.policy.should_drop(request, "rewrite", self):
            self._drop(request, "rewrite")
            return
        self.rewrite.submit(request)

    def _grant(self, request: RagRequest, stage: SlotStage) -> bool:
        """Slot-grant hook: last chance to drop before burning a slot."""
        if self.policy.should_drop(request, stage.name, self):
            self._drop(request, stage.name)
            return False
        return True

    def _after_rewrite(self, request: RagRequest) -> None:
        # Fan out to retrieve and search in parallel (DAG branch).
        request._joins = 0
        self.retrieve.submit(request)
        self.search.submit(request)

    def _after_branch(self, request: RagRequest) -> None:
        request._joins += 1
        if request._joins < 2:
            return
        request.context_tokens = max(
            32, int(self.rng.normal(self.config.context_tokens_mean, 80))
        )
        if self.policy.should_drop(request, "generate", self):
            self._drop(request, "generate")
            return
        self.generate.submit(request)

    def _after_generate(self, request: RagRequest) -> None:
        request.status = RagStatus.COMPLETED
        request.finished_at = self.sim.now

    def _drop(self, request: RagRequest, stage: str) -> None:
        request.status = RagStatus.DROPPED
        request.dropped_at_stage = stage
        request.finished_at = self.sim.now

    # -- run + metrics ---------------------------------------------------------

    def run(self) -> None:
        """Run the simulation until every request reaches a terminal state."""
        self.sim.run()

    def drop_rate(self) -> float:
        """Drops plus TTFT-SLO violations, over all requests (§7 metric)."""
        if not self.requests:
            return 0.0
        bad = sum(1 for r in self.requests if not self._good(r))
        return bad / len(self.requests)

    def goodput_fraction(self) -> float:
        return 1.0 - self.drop_rate()

    def _good(self, r: RagRequest) -> bool:
        return (
            r.status is RagStatus.COMPLETED
            and r.finished_at is not None
            and r.finished_at - r.sent_at <= self.config.ttft_slo
        )

    def stage_latency_samples(self) -> dict[str, list[float]]:
        """Per-stage latency distributions (Figure 15b)."""
        return {
            "rewrite": list(self.rewrite.latencies),
            "retrieve": list(self.retrieve.latencies),
            "search": list(self.search.latencies),
            "generate": list(self.generate.latencies),
        }
