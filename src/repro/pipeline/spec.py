"""Pipeline specifications.

A pipeline is a DAG of modules; each module serves one DNN model.  This
mirrors the paper's JSON configuration format, where every module is a
``(name, id, pres, subs)`` record: ``name`` is the model registered in the
application library, ``pres``/``subs`` the preceding/subsequent module ids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx


@dataclass(frozen=True)
class ModuleSpec:
    """One module (one DNN model) in the pipeline DAG."""

    id: str
    model: str
    pres: tuple[str, ...] = ()
    subs: tuple[str, ...] = ()


@dataclass
class PipelineSpec:
    """A validated DAG of :class:`ModuleSpec`.

    ``modules`` preserves declaration order, which is also the display order
    used by metrics (M1..MN for chains).
    """

    name: str
    modules: list[ModuleSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id = {m.id: m for m in self.modules}
        if len(self._by_id) != len(self.modules):
            raise ValueError(f"duplicate module ids in pipeline {self.name!r}")
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._by_id)
        for m in self.modules:
            for p in m.pres:
                if p not in self._by_id:
                    raise ValueError(f"module {m.id!r} references unknown pre {p!r}")
                self._graph.add_edge(p, m.id)
            for s in m.subs:
                if s not in self._by_id:
                    raise ValueError(f"module {m.id!r} references unknown sub {s!r}")
                self._graph.add_edge(m.id, s)
        for a, b in self._graph.edges:
            if b not in self._by_id[a].subs or a not in self._by_id[b].pres:
                raise ValueError(
                    f"inconsistent edge {a!r}->{b!r}: pres/subs must mirror each other"
                )
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"pipeline {self.name!r} contains a cycle")
        if self.modules and not nx.is_weakly_connected(self._graph):
            raise ValueError(f"pipeline {self.name!r} is not connected")
        self._paths_cache: dict[str, list[list[str]]] = {}
        self._freeze_structure()

    def _freeze_structure(self) -> None:
        """Precompute the DAG views consumed on the per-request hot path.

        The spec is immutable after validation, so topological order,
        declaration indices, per-module descendant sets and the fork ->
        join contribution table are all computed exactly once here instead
        of re-deriving them (via ``nx.descendants`` + a full sort) on
        every fork passage or budget lookup.
        """
        self._ids: tuple[str, ...] = tuple(m.id for m in self.modules)
        self._index: dict[str, int] = {mid: i for i, mid in enumerate(self._ids)}
        self._topo: tuple[str, ...] = tuple(
            nx.lexicographical_topological_sort(self._graph)
        )
        topo_index = {mid: i for i, mid in enumerate(self._topo)}
        self._chain: bool = all(
            len(m.pres) <= 1 and len(m.subs) <= 1 for m in self.modules
        )
        # Descendant sets by reverse-topological accumulation: one union
        # per edge instead of one graph traversal per query.
        desc: dict[str, frozenset[str]] = {}
        for mid in reversed(self._topo):
            reach: set[str] = set()
            for s in self._by_id[mid].subs:
                reach.add(s)
                reach.update(desc[s])
            desc[mid] = frozenset(reach)
        self._desc = desc
        self._downstream: dict[str, tuple[str, ...]] = {
            mid: tuple(sorted(reach, key=topo_index.__getitem__))
            for mid, reach in desc.items()
        }
        # Fork bookkeeping: for every module, the join modules (in-degree
        # > 1) it is or can reach.  RequestFlow._record_branch_choice sums
        # these per chosen branch instead of scanning all module ids.
        joins = tuple(m.id for m in self.modules if len(m.pres) > 1)
        self._joins_reached: dict[str, tuple[str, ...]] = {
            mid: tuple(j for j in joins if j == mid or j in desc[mid])
            for mid in self._ids
        }

    # -- structure ---------------------------------------------------------

    @property
    def module_ids(self) -> list[str]:
        return list(self._ids)

    @property
    def entry_ids(self) -> list[str]:
        """Modules with no predecessors (requests enter here)."""
        return [m.id for m in self.modules if not m.pres]

    @property
    def exit_ids(self) -> list[str]:
        """Modules with no successors (requests complete here)."""
        return [m.id for m in self.modules if not m.subs]

    @property
    def is_chain(self) -> bool:
        """True when the DAG is a simple linear chain."""
        return self._chain

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, module_id: str) -> ModuleSpec:
        return self._by_id[module_id]

    def __contains__(self, module_id: str) -> bool:
        return module_id in self._by_id

    def successors(self, module_id: str) -> tuple[str, ...]:
        return self._by_id[module_id].subs

    def predecessors(self, module_id: str) -> tuple[str, ...]:
        return self._by_id[module_id].pres

    def index_of(self, module_id: str) -> int:
        """Position of the module in declaration order (0-based)."""
        try:
            return self._index[module_id]
        except KeyError:
            raise ValueError(f"{module_id!r} is not in pipeline {self.name!r}") from None

    def topological_order(self) -> list[str]:
        """Module ids in a deterministic topological order (precomputed)."""
        return list(self._topo)

    def paths_from(self, module_id: str) -> list[list[str]]:
        """All DAG paths from ``module_id`` (exclusive) to any exit module.

        Used by the latency estimator: the end-to-end estimate of a request
        at a fork is the maximum over its downstream paths.  Paths exclude
        the starting module itself; the path for an exit module is ``[]``.
        """
        cached = self._paths_cache.get(module_id)
        if cached is not None:
            return cached
        subs = self.successors(module_id)
        if not subs:
            paths: list[list[str]] = [[]]
        else:
            paths = []
            for s in subs:
                for tail in self.paths_from(s):
                    paths.append([s, *tail])
        self._paths_cache[module_id] = paths
        return paths

    def downstream(self, module_id: str) -> list[str]:
        """All modules reachable from ``module_id`` (topological order)."""
        return list(self._downstream[module_id])

    def downstream_set(self, module_id: str) -> frozenset[str]:
        """Reachable modules as a set (O(1) membership on request paths)."""
        return self._desc[module_id]

    def joins_reached(self, module_id: str) -> tuple[str, ...]:
        """Join modules (in-degree > 1) at or downstream of ``module_id``.

        Precomputed at construction; this is the table fork passages
        consult when adjusting join requirements per chosen branch.
        """
        return self._joins_reached[module_id]

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialise to the paper's JSON module-list format."""
        return json.dumps(
            {
                "name": self.name,
                "modules": [
                    {
                        "name": m.model,
                        "id": m.id,
                        "pres": list(m.pres),
                        "subs": list(m.subs),
                    }
                    for m in self.modules
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse the paper's JSON pipeline-definition format."""
        data = json.loads(text)
        modules = [
            ModuleSpec(
                id=str(m["id"]),
                model=str(m["name"]),
                pres=tuple(str(p) for p in m.get("pres", [])),
                subs=tuple(str(s) for s in m.get("subs", [])),
            )
            for m in data["modules"]
        ]
        return cls(name=str(data.get("name", "pipeline")), modules=modules)

    @classmethod
    def from_file(cls, path: str | Path) -> "PipelineSpec":
        return cls.from_json(Path(path).read_text())


def chain(name: str, models: list[str]) -> PipelineSpec:
    """Build a linear pipeline ``M1 -> M2 -> ... -> MN`` from model names."""
    if not models:
        raise ValueError("a chain needs at least one model")
    ids = [f"m{i + 1}" for i in range(len(models))]
    modules = [
        ModuleSpec(
            id=ids[i],
            model=models[i],
            pres=(ids[i - 1],) if i > 0 else (),
            subs=(ids[i + 1],) if i + 1 < len(models) else (),
        )
        for i in range(len(models))
    ]
    return PipelineSpec(name=name, modules=modules)
