"""Pipeline specifications.

A pipeline is a DAG of modules; each module serves one DNN model.  This
mirrors the paper's JSON configuration format, where every module is a
``(name, id, pres, subs)`` record: ``name`` is the model registered in the
application library, ``pres``/``subs`` the preceding/subsequent module ids.

Token-flow join semantics
-------------------------

Requests traverse the DAG as *token flow*: a request enters the pipeline
carrying one token; a fork splits its token into one token per chosen
successor; a join merges every token it receives back into one.  A join
therefore fires exactly when the number of tokens it will ever receive —
one per predecessor that will actually execute — have all arrived.

The spec freezes everything the request lifecycle needs to maintain that
"will ever receive" quantity without per-request graph walks:

* under full fan-out every predecessor executes, so a join's demand is
  simply its in-degree;
* when a fork routes a request down a subset of its successors, each
  unchosen edge stops carrying a token.  The precomputed per-(fork,
  branch) :class:`KillPlan` lists the consequences of that one dead edge
  in isolation: the modules that can then never execute (their entire
  inflow came through it) and, for every *border* join that survives, how
  many of its incoming edges died — i.e. how much its token demand drops.
* runtime state composes overlapping choices: when independently applied
  plans drive a border join's remaining demand to zero, that join is dead
  too, and its own :meth:`PipelineSpec.death_plan` propagates the loss —
  again pure table lookups plus counter updates.

Counting token flow this way (rather than downstream *paths*) is what
keeps re-merging DAGs correct: a token that re-merges at an intermediate
join is one token afterwards, no matter how many paths led into the merge,
so a later join is never over- or under-counted.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx


@dataclass(frozen=True)
class ModuleSpec:
    """One module (one DNN model) in the pipeline DAG."""

    id: str
    model: str
    pres: tuple[str, ...] = ()
    subs: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class KillPlan:
    """Precomputed consequences of one dead edge (or module) for token flow.

    ``dead`` lists the modules (topological order) that can never execute
    once the plan's root edges carry no token — their entire inflow came
    through those edges.  ``dead_exits`` counts the exit modules among
    them.  ``join_deltas`` lists, for every join that *survives* with a
    reduced inflow, how many of its incoming edges died — the amount its
    token demand must drop.  Plans are computed in isolation; the request
    flow composes overlapping plans through per-request live counters.
    """

    dead: tuple[str, ...] = ()
    dead_exits: int = 0
    join_deltas: tuple[tuple[str, int], ...] = ()


@dataclass
class PipelineSpec:
    """A validated DAG of :class:`ModuleSpec`.

    ``modules`` preserves declaration order, which is also the display order
    used by metrics (M1..MN for chains).
    """

    name: str
    modules: list[ModuleSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id = {m.id: m for m in self.modules}
        if len(self._by_id) != len(self.modules):
            raise ValueError(f"duplicate module ids in pipeline {self.name!r}")
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._by_id)
        for m in self.modules:
            # Duplicate edge declarations would be silently deduplicated by
            # the graph but double-delivered by the request flow — a join
            # double-fire waiting to happen.  Reject them up front.
            if len(set(m.pres)) != len(m.pres):
                raise ValueError(
                    f"module {m.id!r} declares duplicate predecessor edges: "
                    f"{list(m.pres)}"
                )
            if len(set(m.subs)) != len(m.subs):
                raise ValueError(
                    f"module {m.id!r} declares duplicate successor edges: "
                    f"{list(m.subs)}"
                )
            for p in m.pres:
                if p not in self._by_id:
                    raise ValueError(f"module {m.id!r} references unknown pre {p!r}")
                self._graph.add_edge(p, m.id)
            for s in m.subs:
                if s not in self._by_id:
                    raise ValueError(f"module {m.id!r} references unknown sub {s!r}")
                self._graph.add_edge(m.id, s)
        for a, b in self._graph.edges:
            if b not in self._by_id[a].subs or a not in self._by_id[b].pres:
                raise ValueError(
                    f"inconsistent edge {a!r}->{b!r}: pres/subs must mirror each other"
                )
        # Modules no entry can reach would never receive a token and any
        # join depending on them would hang the simulation — diagnose the
        # malformation here, by name, instead.  (Checked before acyclicity
        # so a cycle hanging off the reachable DAG is reported as the
        # unreachable region it is.)
        if self.modules:
            entries = [m.id for m in self.modules if not m.pres]
            if not entries:
                raise ValueError(
                    f"pipeline {self.name!r} has no entry module: every "
                    "module has predecessors, so the graph contains a cycle"
                )
            reachable = set(entries)
            frontier = list(entries)
            while frontier:
                mid = frontier.pop()
                for s in self._by_id[mid].subs:
                    if s not in reachable:
                        reachable.add(s)
                        frontier.append(s)
            unreachable = [m.id for m in self.modules if m.id not in reachable]
            if unreachable:
                raise ValueError(
                    f"pipeline {self.name!r} has modules unreachable from "
                    f"any entry: {unreachable}"
                )
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"pipeline {self.name!r} contains a cycle")
        if self.modules and not nx.is_weakly_connected(self._graph):
            raise ValueError(f"pipeline {self.name!r} is not connected")
        self._paths_cache: dict[str, list[list[str]]] = {}
        self._freeze_structure()

    def _freeze_structure(self) -> None:
        """Precompute the DAG views consumed on the per-request hot path.

        The spec is immutable after validation, so topological order,
        declaration indices, per-module descendant sets and the token-flow
        tables (per-(fork, branch) :class:`KillPlan`, per-module death
        plans, in-degrees) are all computed exactly once here instead of
        re-deriving them (via ``nx.descendants`` + a full sort) on every
        fork passage or budget lookup.
        """
        self._ids: tuple[str, ...] = tuple(m.id for m in self.modules)
        self._index: dict[str, int] = {mid: i for i, mid in enumerate(self._ids)}
        self._topo: tuple[str, ...] = tuple(
            nx.lexicographical_topological_sort(self._graph)
        )
        topo_index = {mid: i for i, mid in enumerate(self._topo)}
        self._chain: bool = all(
            len(m.pres) <= 1 and len(m.subs) <= 1 for m in self.modules
        )
        # Descendant sets by reverse-topological accumulation: one union
        # per edge instead of one graph traversal per query.
        desc: dict[str, frozenset[str]] = {}
        for mid in reversed(self._topo):
            reach: set[str] = set()
            for s in self._by_id[mid].subs:
                reach.add(s)
                reach.update(desc[s])
            desc[mid] = frozenset(reach)
        self._desc = desc
        self._downstream: dict[str, tuple[str, ...]] = {
            mid: tuple(sorted(reach, key=topo_index.__getitem__))
            for mid, reach in desc.items()
        }
        # Token-flow tables.  Under full fan-out every predecessor of a
        # join delivers one token, so the demand is the in-degree; the
        # kill plans below describe how that demand shrinks when a fork
        # routes a request down a subset of its successors.
        self._in_degree: dict[str, int] = {
            mid: len(self._by_id[mid].pres) for mid in self._ids
        }
        self._join_ids: tuple[str, ...] = tuple(
            mid for mid in self._topo if self._in_degree[mid] > 1
        )
        self._fork_ids: tuple[str, ...] = tuple(
            mid for mid in self._topo if len(self._by_id[mid].subs) > 1
        )
        self._exit_count: int = sum(1 for m in self.modules if not m.subs)
        self._edge_kill_plans: dict[tuple[str, str], KillPlan] = {}
        for fid in self._fork_ids:
            for s in self._by_id[fid].subs:
                self._edge_kill_plans[(fid, s)] = self._kill_closure(
                    ((fid, s),)
                )
        self._death_plans: dict[str, KillPlan] = {
            mid: self._kill_closure(
                tuple((mid, t) for t in self._by_id[mid].subs)
            )
            for mid in self._ids
        }

    def _kill_closure(self, root_edges: tuple[tuple[str, str], ...]) -> KillPlan:
        """The :class:`KillPlan` for a set of edges that carry no token.

        A (non-entry) module dies when every incoming edge is either a
        root edge or originates from an already-dead module — one pass in
        topological order computes the closure.  Joins that survive with
        some dead in-edges become the plan's ``join_deltas``.
        """
        roots = set(root_edges)
        dead: set[str] = set()
        for mid in self._topo:
            pres = self._by_id[mid].pres
            if not pres:
                continue
            if all(p in dead or (p, mid) in roots for p in pres):
                dead.add(mid)
        deltas: list[tuple[str, int]] = []
        for mid in self._join_ids:
            if mid in dead:
                continue
            k = sum(
                1
                for p in self._by_id[mid].pres
                if p in dead or (p, mid) in roots
            )
            if k:
                deltas.append((mid, k))
        return KillPlan(
            dead=tuple(mid for mid in self._topo if mid in dead),
            dead_exits=sum(1 for mid in dead if not self._by_id[mid].subs),
            join_deltas=tuple(deltas),
        )

    # -- structure ---------------------------------------------------------

    @property
    def module_ids(self) -> list[str]:
        return list(self._ids)

    @property
    def entry_ids(self) -> list[str]:
        """Modules with no predecessors (requests enter here)."""
        return [m.id for m in self.modules if not m.pres]

    @property
    def exit_ids(self) -> list[str]:
        """Modules with no successors (requests complete here)."""
        return [m.id for m in self.modules if not m.subs]

    @property
    def is_chain(self) -> bool:
        """True when the DAG is a simple linear chain."""
        return self._chain

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, module_id: str) -> ModuleSpec:
        return self._by_id[module_id]

    def __contains__(self, module_id: str) -> bool:
        return module_id in self._by_id

    def successors(self, module_id: str) -> tuple[str, ...]:
        return self._by_id[module_id].subs

    def predecessors(self, module_id: str) -> tuple[str, ...]:
        return self._by_id[module_id].pres

    def index_of(self, module_id: str) -> int:
        """Position of the module in declaration order (0-based)."""
        try:
            return self._index[module_id]
        except KeyError:
            raise ValueError(f"{module_id!r} is not in pipeline {self.name!r}") from None

    def topological_order(self) -> list[str]:
        """Module ids in a deterministic topological order (precomputed)."""
        return list(self._topo)

    def paths_from(self, module_id: str) -> list[list[str]]:
        """All DAG paths from ``module_id`` (exclusive) to any exit module.

        Used by the latency estimator: the end-to-end estimate of a request
        at a fork is the maximum over its downstream paths.  Paths exclude
        the starting module itself; the path for an exit module is ``[]``.
        """
        cached = self._paths_cache.get(module_id)
        if cached is not None:
            return cached
        subs = self.successors(module_id)
        if not subs:
            paths: list[list[str]] = [[]]
        else:
            paths = []
            for s in subs:
                for tail in self.paths_from(s):
                    paths.append([s, *tail])
        self._paths_cache[module_id] = paths
        return paths

    def downstream(self, module_id: str) -> list[str]:
        """All modules reachable from ``module_id`` (topological order)."""
        return list(self._downstream[module_id])

    def downstream_set(self, module_id: str) -> frozenset[str]:
        """Reachable modules as a set (O(1) membership on request paths)."""
        return self._desc[module_id]

    # -- token-flow tables -------------------------------------------------

    def in_degree(self, module_id: str) -> int:
        """Number of incoming edges — a join's token demand at full fan-out."""
        return self._in_degree[module_id]

    @property
    def join_ids(self) -> tuple[str, ...]:
        """Modules with in-degree > 1 (topological order)."""
        return self._join_ids

    @property
    def fork_ids(self) -> tuple[str, ...]:
        """Modules with more than one successor (topological order)."""
        return self._fork_ids

    @property
    def exit_count(self) -> int:
        """Number of exit modules (a request completes when all finish)."""
        return self._exit_count

    def edge_kill_plan(self, fork_id: str, branch_id: str) -> KillPlan:
        """Token-flow consequences of a fork not choosing ``branch_id``.

        Precomputed at construction for every (fork, successor) edge;
        raises ``ValueError`` for edges that are not fork branches.
        """
        try:
            return self._edge_kill_plans[(fork_id, branch_id)]
        except KeyError:
            raise ValueError(
                f"{fork_id!r} -> {branch_id!r} is not a fork edge of "
                f"pipeline {self.name!r}"
            ) from None

    def death_plan(self, module_id: str) -> KillPlan:
        """Token-flow consequences of ``module_id`` never executing.

        Applied when runtime kill plans drive a join's remaining token
        demand to zero: the dead join's outgoing edges stop carrying
        tokens, and this plan propagates that loss downstream.
        """
        return self._death_plans[module_id]

    # -- path reductions (policy budget shares / forward estimates) --------

    def cumulative_upstream_max(
        self, values: Mapping[str, float]
    ) -> dict[str, float]:
        """Per module, the heaviest entry-to-module path sum (inclusive).

        One dynamic-programming pass over the frozen topological order:
        ``cum[m] = values[m] + max(cum[p] for p in predecessors)``.  This
        is the table split-budget policies divide the SLO with — the
        share of the longest upstream path, consistent with max-over-path
        latency estimation — without per-policy recursion or memo
        invalidation (and without enumerating paths, which is exponential
        on dense DAGs).
        """
        cum: dict[str, float] = {}
        for mid in self._topo:
            pres = self._by_id[mid].pres
            best = max((cum[p] for p in pres), default=0.0)
            cum[mid] = values[mid] + best
        return cum

    def downstream_path_max(
        self, values: Mapping[str, float]
    ) -> dict[str, float]:
        """Per module, the heaviest downstream path sum (exclusive).

        ``out[m] = max(values[s] + out[s] for s in successors)`` over the
        reversed topological order; 0.0 for exit modules.  Replaces
        explicit path enumeration for additive per-module estimates.
        """
        out: dict[str, float] = {}
        for mid in reversed(self._topo):
            out[mid] = max(
                (values[s] + out[s] for s in self._by_id[mid].subs),
                default=0.0,
            )
        return out

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialise to the paper's JSON module-list format."""
        return json.dumps(
            {
                "name": self.name,
                "modules": [
                    {
                        "name": m.model,
                        "id": m.id,
                        "pres": list(m.pres),
                        "subs": list(m.subs),
                    }
                    for m in self.modules
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse the paper's JSON pipeline-definition format."""
        data = json.loads(text)
        modules = [
            ModuleSpec(
                id=str(m["id"]),
                model=str(m["name"]),
                pres=tuple(str(p) for p in m.get("pres", [])),
                subs=tuple(str(s) for s in m.get("subs", [])),
            )
            for m in data["modules"]
        ]
        return cls(name=str(data.get("name", "pipeline")), modules=modules)

    @classmethod
    def from_file(cls, path: str | Path) -> "PipelineSpec":
        return cls.from_json(Path(path).read_text())


def chain(name: str, models: list[str]) -> PipelineSpec:
    """Build a linear pipeline ``M1 -> M2 -> ... -> MN`` from model names."""
    if not models:
        raise ValueError("a chain needs at least one model")
    ids = [f"m{i + 1}" for i in range(len(models))]
    modules = [
        ModuleSpec(
            id=ids[i],
            model=models[i],
            pres=(ids[i - 1],) if i > 0 else (),
            subs=(ids[i + 1],) if i + 1 < len(models) else (),
        )
        for i in range(len(models))
    ]
    return PipelineSpec(name=name, modules=modules)
