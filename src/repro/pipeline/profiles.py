"""Offline model profiles.

The paper performs offline profiling per model to obtain execution duration
and throughput at each batch size; every policy then consumes only these
profiled numbers (never the "real" hardware).  We substitute real GPUs with
affine batch-latency profiles ``d(B) = base + per_item * B``, the standard
shape reported for convolutional models on V100/2080Ti-class GPUs (Nexus,
Clipper, Clockwork all profile this way).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Profiled batch-latency curve of one DNN model.

    Parameters
    ----------
    name:
        Registered model name (what pipeline specs reference).
    base:
        Fixed per-batch overhead in seconds (kernel launch, pre/post).
    per_item:
        Marginal seconds per batched item.
    max_batch:
        Largest batch size the model (GPU memory) supports.
    """

    name: str
    base: float
    per_item: float
    max_batch: int = 32

    def __post_init__(self) -> None:
        if self.base <= 0 or self.per_item <= 0:
            raise ValueError(f"profile {self.name!r}: base/per_item must be > 0")
        if self.max_batch < 1:
            raise ValueError(f"profile {self.name!r}: max_batch must be >= 1")

    def duration(self, batch_size: int) -> float:
        """Profiled execution duration (seconds) for ``batch_size``."""
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if batch_size > self.max_batch:
            raise ValueError(
                f"batch size {batch_size} exceeds max_batch {self.max_batch} "
                f"for model {self.name!r}"
            )
        return self.base + self.per_item * batch_size

    def throughput(self, batch_size: int) -> float:
        """Requests per second one worker sustains at ``batch_size``."""
        return batch_size / self.duration(batch_size)

    def max_throughput(self) -> float:
        """Throughput at the largest supported batch size."""
        return self.throughput(self.max_batch)

    def feasible_batch(self, budget: float) -> int:
        """Largest batch size whose duration fits within ``budget`` seconds.

        Returns 0 when even a single-request batch does not fit (the module
        cannot meet its share of the SLO at all).
        """
        if budget < self.duration(1):
            return 0
        # The 1e-9 guard keeps floating-point round-off from rejecting a
        # batch size whose duration equals the budget exactly.
        b = int((budget - self.base) / self.per_item + 1e-9)
        return max(1, min(b, self.max_batch))


class ProfileRegistry:
    """Name -> :class:`ModelProfile` lookup used when building clusters."""

    def __init__(self, profiles: list[ModelProfile] | None = None) -> None:
        self._profiles: dict[str, ModelProfile] = {}
        for p in profiles or []:
            self.register(p)

    def register(self, profile: ModelProfile) -> None:
        if profile.name in self._profiles:
            raise ValueError(f"profile {profile.name!r} already registered")
        self._profiles[profile.name] = profile

    def get(self, name: str) -> ModelProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(
                f"no profile registered for model {name!r}; "
                f"known: {sorted(self._profiles)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def names(self) -> list[str]:
        return sorted(self._profiles)


# Profiles for the eleven models used by the paper's four applications
# (tm, lv, gm, da).  Numbers are in seconds and chosen to be plausible for
# 2080Ti-class GPUs: detection models are heavier than recognition heads.
DEFAULT_PROFILES = ProfileRegistry(
    [
        ModelProfile("object_detection", base=0.025, per_item=0.0090, max_batch=32),
        ModelProfile("face_recognition", base=0.015, per_item=0.0060, max_batch=32),
        ModelProfile("text_recognition", base=0.018, per_item=0.0070, max_batch=32),
        ModelProfile("person_detection", base=0.024, per_item=0.0085, max_batch=32),
        ModelProfile("expression_recognition", base=0.012, per_item=0.0050, max_batch=32),
        ModelProfile("eye_tracking", base=0.010, per_item=0.0045, max_batch=32),
        ModelProfile("pose_recognition", base=0.016, per_item=0.0065, max_batch=32),
        ModelProfile("kill_count_detection", base=0.013, per_item=0.0055, max_batch=32),
        ModelProfile("alive_player_recognition", base=0.011, per_item=0.0050, max_batch=32),
        ModelProfile("health_value_recognition", base=0.010, per_item=0.0045, max_batch=32),
        ModelProfile("icon_recognition", base=0.009, per_item=0.0040, max_batch=32),
    ]
)
