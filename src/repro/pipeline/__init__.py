"""Pipeline specifications, model profiles and the paper's applications."""

from .applications import (
    APPLICATIONS,
    Application,
    da,
    get_application,
    gm,
    known_applications,
    lv,
    register_application,
    tm,
)
from .llm_profiles import (
    LLM_PROFILES,
    LLMProfile,
    TokenDist,
    is_llm_application,
    llm_chat,
    profile_from_dict,
    profile_to_dict,
    rag_agentic,
)
from .profiles import DEFAULT_PROFILES, ModelProfile, ProfileRegistry
from .spec import ModuleSpec, PipelineSpec, chain

__all__ = [
    "APPLICATIONS",
    "Application",
    "DEFAULT_PROFILES",
    "LLMProfile",
    "LLM_PROFILES",
    "ModelProfile",
    "ModuleSpec",
    "PipelineSpec",
    "ProfileRegistry",
    "TokenDist",
    "chain",
    "da",
    "get_application",
    "gm",
    "is_llm_application",
    "known_applications",
    "llm_chat",
    "lv",
    "profile_from_dict",
    "profile_to_dict",
    "rag_agentic",
    "register_application",
    "tm",
]
