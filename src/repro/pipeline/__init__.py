"""Pipeline specifications, model profiles and the paper's applications."""

from .applications import (
    APPLICATIONS,
    Application,
    da,
    get_application,
    gm,
    known_applications,
    lv,
    register_application,
    tm,
)
from .profiles import DEFAULT_PROFILES, ModelProfile, ProfileRegistry
from .spec import ModuleSpec, PipelineSpec, chain

__all__ = [
    "APPLICATIONS",
    "Application",
    "DEFAULT_PROFILES",
    "ModelProfile",
    "ModuleSpec",
    "PipelineSpec",
    "ProfileRegistry",
    "chain",
    "da",
    "get_application",
    "gm",
    "known_applications",
    "lv",
    "register_application",
    "tm",
]
