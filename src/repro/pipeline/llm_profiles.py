"""Token-level LLM model profiles and applications.

LLM inference breaks the affine batch-latency assumption of
:mod:`repro.pipeline.profiles`: a request first runs one *prefill*
iteration over its prompt tokens, then one *decode* iteration per output
token, sharing each iteration with whatever else is in the continuous
batch.  :class:`LLMProfile` captures both phase costs plus the KV-cache
capacity that bounds how many token reservations fit on one worker.

The profile is still a :class:`~repro.pipeline.profiles.ModelProfile`:
its ``base``/``per_item`` are derived as the *expected* per-request
affine equivalent (prefill plus E[output] decode iterations at batch
size B), so Nexus-style batch planning (`plan_batch_sizes`,
`provision_workers`) and throughput estimates work unchanged, while the
token-level :class:`~repro.simulation.llm.LLMWorker` consumes the phase
costs directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .applications import Application, register_application
from .profiles import DEFAULT_PROFILES, ModelProfile
from .spec import ModuleSpec, PipelineSpec, chain

_DIST_KINDS = ("constant", "uniform", "lognormal")


@dataclass(frozen=True)
class TokenDist:
    """Seeded distribution of token counts (prompt or output lengths).

    ``kind`` selects the shape:

    * ``constant`` — every draw is ``round(mean)``.
    * ``uniform`` — integer-uniform on ``[low, high]``.
    * ``lognormal`` — lognormal with the given *arithmetic* ``mean`` and
      underlying-normal ``sigma`` (the standard long-tail shape of real
      prompt/output length traces).

    Draws are clamped to at least one token so a sampled length can never
    stall a request, and ``0`` stays free as the "not sampled yet"
    sentinel on :class:`~repro.simulation.request.ModuleVisit`.
    """

    kind: str = "constant"
    mean: float = 128.0
    low: float = 1.0
    high: float = 1.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _DIST_KINDS:
            raise ValueError(
                f"unknown token distribution {self.kind!r}; "
                f"expected one of {_DIST_KINDS}"
            )
        if self.kind == "uniform":
            if self.low < 1 or self.high < self.low:
                raise ValueError(
                    f"uniform token distribution needs 1 <= low <= high, "
                    f"got [{self.low}, {self.high}]"
                )
        elif self.mean < 1:
            raise ValueError(f"token distribution mean must be >= 1, got {self.mean}")
        if self.kind == "lognormal" and self.sigma <= 0:
            raise ValueError(f"lognormal sigma must be > 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> int:
        """One integer token count (always >= 1)."""
        if self.kind == "constant":
            return max(1, int(round(self.mean)))
        if self.kind == "uniform":
            return int(rng.integers(int(self.low), int(self.high) + 1))
        # lognormal: pick mu so the arithmetic mean is self.mean.
        mu = math.log(self.mean) - 0.5 * self.sigma * self.sigma
        return max(1, int(round(float(rng.lognormal(mu, self.sigma)))))

    def expectation(self) -> float:
        """Expected token count (used to derive affine-equivalent costs)."""
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.mean

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "mean": self.mean,
            "low": self.low,
            "high": self.high,
            "sigma": self.sigma,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TokenDist":
        unknown = set(data) - {"kind", "mean", "low", "high", "sigma"}
        if unknown:
            raise ValueError(f"unknown TokenDist keys: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class LLMProfile(ModelProfile):
    """Token-cost profile of one LLM model.

    Parameters
    ----------
    prefill_base / prefill_per_token:
        A prefill iteration over ``T`` total prompt tokens takes
        ``prefill_base + prefill_per_token * T`` seconds and emits each
        request's first output token.
    decode_base / decode_per_token:
        A decode iteration at running batch size ``B`` takes
        ``decode_base + decode_per_token * B`` seconds and appends one
        token to every running request.
    kv_capacity:
        Per-worker KV-cache size in tokens; every admitted request holds
        a reservation against it (see :class:`~repro.simulation.llm
        .LLMWorker`).
    prompt_dist / output_dist:
        Per-request token-length distributions, sampled from the
        cluster's seeded RNG streams at dispatch time.
    preempt:
        ``False`` (block mode) reserves ``prompt + output`` tokens at
        admission; ``True`` reserves ``prompt + generated`` and grows the
        reservation per decode, preempting the most recently admitted
        request back to the queue when the cache fills.

    ``base``/``per_item`` are derived from the phase costs and the
    distribution expectations unless given explicitly, so the profile
    plugs into batch planning and provisioning as a normal
    :class:`ModelProfile`.
    """

    base: float = 0.0  # derived in __post_init__ when left at 0
    per_item: float = 0.0
    prefill_base: float = 0.004
    prefill_per_token: float = 0.00002
    decode_base: float = 0.002
    decode_per_token: float = 0.0001
    kv_capacity: int = 8192
    prompt_dist: TokenDist = field(default_factory=TokenDist)
    output_dist: TokenDist = field(
        default_factory=lambda: TokenDist(kind="constant", mean=64.0)
    )
    preempt: bool = False

    def __post_init__(self) -> None:
        if min(
            self.prefill_base,
            self.prefill_per_token,
            self.decode_base,
            self.decode_per_token,
        ) <= 0:
            raise ValueError(
                f"profile {self.name!r}: prefill/decode costs must be > 0"
            )
        if self.kv_capacity < 1:
            raise ValueError(f"profile {self.name!r}: kv_capacity must be >= 1")
        e_prompt = self.prompt_dist.expectation()
        e_out = self.output_dist.expectation()
        # Affine equivalent of the expected per-request cost at batch size
        # B: one shared prefill pass plus E[out] decode iterations —
        # d(B) = (prefill_base + E[out]*decode_base)
        #        + (prefill_per_token*E[prompt] + E[out]*decode_per_token)*B.
        if self.base <= 0:
            object.__setattr__(
                self, "base", self.prefill_base + e_out * self.decode_base
            )
        if self.per_item <= 0:
            object.__setattr__(
                self,
                "per_item",
                self.prefill_per_token * e_prompt + e_out * self.decode_per_token,
            )
        super().__post_init__()

    # -- token-phase costs --------------------------------------------------

    def prefill_duration(self, prompt_tokens: int) -> float:
        """Duration of one prefill iteration over ``prompt_tokens`` total."""
        return self.prefill_base + self.prefill_per_token * prompt_tokens

    def decode_duration(self, batch_size: int) -> float:
        """Duration of one decode iteration at running batch ``batch_size``."""
        return self.decode_base + self.decode_per_token * batch_size

    def request_estimate(self, prompt_tokens: int, output_tokens: int, batch_size: int) -> float:
        """Expected service time of one request at a given batch size."""
        b = max(1, min(batch_size, self.max_batch))
        return self.prefill_duration(prompt_tokens) + output_tokens * self.decode_duration(b)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict (``base``/``per_item`` stay derived)."""
        return {
            "kind": "llm",
            "name": self.name,
            "max_batch": self.max_batch,
            "prefill_base": self.prefill_base,
            "prefill_per_token": self.prefill_per_token,
            "decode_base": self.decode_base,
            "decode_per_token": self.decode_per_token,
            "kv_capacity": self.kv_capacity,
            "prompt_dist": self.prompt_dist.to_dict(),
            "output_dist": self.output_dist.to_dict(),
            "preempt": self.preempt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LLMProfile":
        allowed = {
            "kind", "name", "max_batch", "prefill_base", "prefill_per_token",
            "decode_base", "decode_per_token", "kv_capacity", "prompt_dist",
            "output_dist", "preempt",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown LLMProfile keys: {sorted(unknown)}")
        kwargs = {k: v for k, v in data.items() if k != "kind"}
        for key in ("prompt_dist", "output_dist"):
            if key in kwargs and isinstance(kwargs[key], Mapping):
                kwargs[key] = TokenDist.from_dict(kwargs[key])
        return cls(**kwargs)


def is_llm_profile_dict(data: Mapping[str, Any]) -> bool:
    """True when a serialized profile dict describes an :class:`LLMProfile`."""
    return data.get("kind") == "llm" or "prefill_base" in data


def profile_from_dict(data: Mapping[str, Any]) -> ModelProfile:
    """Deserialize either profile flavour from its dict form."""
    if is_llm_profile_dict(data):
        return LLMProfile.from_dict(data)
    return ModelProfile(
        name=data["name"],
        base=data["base"],
        per_item=data["per_item"],
        max_batch=data.get("max_batch", 32),
    )


def profile_to_dict(profile: ModelProfile) -> dict[str, Any]:
    """Serialize either profile flavour to its dict form."""
    if isinstance(profile, LLMProfile):
        return profile.to_dict()
    return {
        "name": profile.name,
        "base": profile.base,
        "per_item": profile.per_item,
        "max_batch": profile.max_batch,
    }


# Default token-level profiles, registered next to the vision models so
# scenario files can reference them by name.  Costs are plausible for a
# single A100-class GPU serving a ~7B model (prefill ~50k tok/s, decode
# ~2ms/iteration floor); the rerank head is a short-output scorer.
LLM_PROFILES = [
    LLMProfile(
        "llm_generate",
        max_batch=8,
        prefill_base=0.004,
        prefill_per_token=0.00002,
        decode_base=0.0025,
        decode_per_token=0.00035,
        kv_capacity=16384,
        prompt_dist=TokenDist(kind="lognormal", mean=256.0, sigma=0.5),
        output_dist=TokenDist(kind="lognormal", mean=96.0, sigma=0.6),
    ),
    LLMProfile(
        "llm_rerank",
        max_batch=16,
        prefill_base=0.003,
        prefill_per_token=0.000012,
        decode_base=0.0018,
        decode_per_token=0.0002,
        kv_capacity=8192,
        prompt_dist=TokenDist(kind="uniform", low=96.0, high=160.0),
        output_dist=TokenDist(kind="constant", mean=4.0),
    ),
    # Retrieval is not token-level: a plain affine profile keeps the RAG
    # DAG mixing fixed-duration and LLM modules in one pipeline.
    ModelProfile("rag_retriever", base=0.012, per_item=0.0030, max_batch=32),
]

for _profile in LLM_PROFILES:
    DEFAULT_PROFILES.register(_profile)


def is_llm_application(app: Application) -> bool:
    """True when any module of ``app`` resolves to an :class:`LLMProfile`."""
    return any(
        m.model in DEFAULT_PROFILES
        and isinstance(DEFAULT_PROFILES.get(m.model), LLMProfile)
        for m in app.spec.modules
    )


@register_application("llm-chat")
def llm_chat() -> Application:
    """Single-stage LLM chat serving (one generate module)."""
    spec = chain("llm-chat", ["llm_generate"])
    return Application(spec=spec, slo=8.0)


@register_application("rag-agentic")
def rag_agentic() -> Application:
    """Agentic RAG DAG: retrieve forks to a rerank->generate path or a
    direct-generate shortcut; a probabilistic router picks the branch per
    request (seeded), exercising kill plans and multi-exit retirement."""
    spec = PipelineSpec(
        name="rag-agentic",
        modules=[
            ModuleSpec(
                "retrieve", "rag_retriever",
                pres=(), subs=("rerank", "generate_direct"),
            ),
            ModuleSpec("rerank", "llm_rerank", pres=("retrieve",), subs=("generate",)),
            ModuleSpec("generate", "llm_generate", pres=("rerank",), subs=()),
            ModuleSpec(
                "generate_direct", "llm_generate",
                pres=("retrieve",), subs=(),
            ),
        ],
    )
    return Application(spec=spec, slo=10.0)
