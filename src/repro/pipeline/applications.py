"""The paper's four pipeline applications.

Following §5.1:

* ``tm`` — traffic monitoring, 3 models, SLO 400 ms.
* ``lv`` — live video analysis, 5 models, SLO 500 ms.
* ``gm`` — game analysis, 5 models, SLO 600 ms.
* ``da`` — DAG-style live video analysis, SLO 420 ms: person detection fans
  out to pose recognition and face recognition in parallel, merged by
  expression recognition (then eye tracking as the exit stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .spec import ModuleSpec, PipelineSpec, chain


@dataclass(frozen=True)
class Application:
    """A pipeline spec plus its end-to-end latency objective."""

    spec: PipelineSpec
    slo: float

    @property
    def name(self) -> str:
        return self.spec.name


#: Name -> application factory registry.  Factories (not instances) so every
#: lookup gets a fresh, unshared Application.
APPLICATIONS: dict[str, Callable[[], Application]] = {}


def register_application(
    name: str,
) -> Callable[[Callable[[], Application]], Callable[[], Application]]:
    """Decorator registering an application factory under ``name``.

    The same name-keyed pattern as :func:`repro.workload.generators.
    register_trace` and :func:`repro.policies.registry.register_policy`;
    together they let a scenario file reference everything by string.
    """

    def decorate(fn: Callable[[], Application]) -> Callable[[], Application]:
        if name in APPLICATIONS:
            raise ValueError(f"application {name!r} already registered")
        APPLICATIONS[name] = fn
        return fn

    return decorate


def known_applications() -> list[str]:
    """All registered application names."""
    return sorted(APPLICATIONS)


@register_application("tm")
def tm() -> Application:
    """Traffic monitoring: vehicle and pedestrian analysis (3 modules)."""
    spec = chain("tm", ["object_detection", "face_recognition", "text_recognition"])
    return Application(spec=spec, slo=0.400)


@register_application("lv")
def lv() -> Application:
    """Live video analysis (5 modules)."""
    spec = chain(
        "lv",
        [
            "person_detection",
            "face_recognition",
            "expression_recognition",
            "eye_tracking",
            "pose_recognition",
        ],
    )
    return Application(spec=spec, slo=0.500)


@register_application("gm")
def gm() -> Application:
    """Game-stream analysis (5 modules)."""
    spec = chain(
        "gm",
        [
            "object_detection",
            "kill_count_detection",
            "alive_player_recognition",
            "health_value_recognition",
            "icon_recognition",
        ],
    )
    return Application(spec=spec, slo=0.600)


@register_application("da")
def da() -> Application:
    """DAG-style live video analysis (fork/join), SLO 420 ms.

    person detection -> {pose recognition, face recognition} -> expression
    recognition (join) -> eye tracking.
    """
    spec = PipelineSpec(
        name="da",
        modules=[
            ModuleSpec("m1", "person_detection", pres=(), subs=("m2", "m3")),
            ModuleSpec("m2", "pose_recognition", pres=("m1",), subs=("m4",)),
            ModuleSpec("m3", "face_recognition", pres=("m1",), subs=("m4",)),
            ModuleSpec("m4", "expression_recognition", pres=("m2", "m3"), subs=("m5",)),
            ModuleSpec("m5", "eye_tracking", pres=("m4",), subs=()),
        ],
    )
    return Application(spec=spec, slo=0.420)


def get_application(name: str) -> Application:
    """Look up one of the paper's applications by name."""
    try:
        return APPLICATIONS[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APPLICATIONS)}"
        ) from None
