"""Replay a workload — eager trace or streaming source — into a cluster.

The pre-PR-8 replay materialized every arrival into the event heap before
the simulation started: O(n) heap memory and O(n log n) setup before the
first event fired.  :class:`ArrivalPump` replaces that with *one* pending
heap event per workload: when it fires, the request is submitted and the
next arrival is pulled from the iterator.  The pump schedules through an
engine arrival lane (:meth:`~repro.simulation.engine.Simulator.open_lane`),
whose reserved sequence-number block reproduces the eager tie-breaking
exactly — so lazy replay is byte-identical to the old materialized replay
on every committed golden.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..simulation.cluster import Cluster
from ..simulation.engine import ArrivalLane
from .trace import Trace


class ArrivalPump:
    """Drives one sorted arrival stream into a cluster, one event at a time.

    ``arrivals`` is anything iterable over ascending times (a
    :class:`Trace`, an :class:`~repro.workload.source.ArrivalSource`, a
    plain list); ``submit`` is called with the arrival time when its
    event fires.  The lane enforces monotonicity, so an unsorted stream
    fails loudly instead of silently reordering.
    """

    __slots__ = ("_it", "_submit", "_lane", "submitted")

    def __init__(
        self,
        arrivals: Iterable[float],
        submit: Callable[[float], object],
        lane: ArrivalLane,
    ) -> None:
        self._it = iter(arrivals)
        self._submit = submit
        self._lane = lane
        self.submitted = 0

    def prime(self) -> "ArrivalPump":
        """Schedule the first arrival (no-op on an empty stream)."""
        self._advance()
        return self

    def _advance(self) -> None:
        t = next(self._it, None)
        if t is not None:
            t = float(t)
            self._lane.schedule(t, self._fire, t)

    def _fire(self, t: float) -> None:
        self._submit(t)
        self.submitted += 1
        self._advance()


def replay(trace: "Trace | Iterable[float]", cluster: Cluster,
           drain: float = 5.0) -> None:
    """Stream every arrival into the cluster and run to completion.

    Works identically for an eager :class:`Trace` and a lazy
    :class:`~repro.workload.source.ArrivalSource` — both iterate sorted
    times and carry a ``duration``.  The simulation runs with
    control-plane ticks until ``duration + drain``; the ticks are then
    cancelled and the event queue drained so every in-flight request
    reaches a terminal state and is accounted in the metrics (backlogged
    queues under the Naive policy can far outlive the trace).
    """
    if drain < 0:
        raise ValueError("drain must be >= 0")
    pump = ArrivalPump(trace, cluster.submit_now, cluster.sim.open_lane())
    pump.prime()
    cluster.start_ticks()
    cluster.sim.run(until=trace.duration + drain)
    cluster.stop_ticks()
    cluster.sim.run()
