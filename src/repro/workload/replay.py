"""Replay a trace into a cluster."""

from __future__ import annotations

from ..simulation.cluster import Cluster
from .trace import Trace


def replay(trace: Trace, cluster: Cluster, drain: float = 5.0) -> None:
    """Schedule every trace arrival on the cluster and run to completion.

    The simulation runs with control-plane ticks until
    ``trace.duration + drain``; the ticks are then cancelled and the event
    queue drained so every in-flight request reaches a terminal state and
    is accounted in the metrics (backlogged queues under the Naive policy
    can far outlive the trace).
    """
    if drain < 0:
        raise ValueError("drain must be >= 0")
    for t in trace.arrivals:
        cluster.submit_at(float(t))
    cluster.start_ticks()
    cluster.sim.run(until=trace.duration + drain)
    cluster.stop_ticks()
    cluster.sim.run()
