"""Arrival traces.

A :class:`Trace` is an ordered array of client send timestamps.  The paper
replays three real-world request-rate traces (Wikipedia, Twitter, Azure
Functions); we ship synthetic generators matched to their published shape
statistics (see :mod:`repro.workload.generators`) plus the machinery to
inspect and replay any trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.rng import stable_hash


@dataclass(frozen=True)
class Trace:
    """Ordered request send-times (seconds from run start)."""

    name: str
    arrivals: np.ndarray  # float64, sorted ascending
    duration: float

    def __post_init__(self) -> None:
        arr = np.asarray(self.arrivals, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("arrivals must be a 1-D array")
        if arr.size and (np.any(np.diff(arr) < 0)):
            raise ValueError("arrivals must be sorted ascending")
        if arr.size and (arr[0] < 0 or arr[-1] > self.duration):
            raise ValueError("arrivals must fall within [0, duration]")
        object.__setattr__(self, "arrivals", arr)

    def __len__(self) -> int:
        return int(self.arrivals.size)

    def __iter__(self):
        """Iterate arrival times as floats (the streaming protocol —
        :class:`~repro.workload.source.ArrivalSource` shares it)."""
        return iter(self.arrivals.tolist())

    @property
    def mean_rate(self) -> float:
        """Average requests/second over the trace duration."""
        if self.duration <= 0:
            return 0.0
        return len(self) / self.duration

    def rate_series(self, window: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """(window start times, requests/second) histogram of the trace."""
        if window <= 0:
            raise ValueError("window must be > 0")
        edges = np.arange(0.0, self.duration + window, window)
        counts, _ = np.histogram(self.arrivals, bins=edges)
        return edges[:-1], counts / window

    def rate_cv(self, window: float = 1.0) -> float:
        """Coefficient of variation of the windowed rate (burstiness).

        The paper characterises its traces by this statistic: wiki ~0.47,
        tweet ~1.0, azure ~1.3.
        """
        _, rates = self.rate_series(window)
        mean = rates.mean()
        if mean == 0:
            return 0.0
        return float(rates.std() / mean)

    def slice(self, start: float, end: float) -> "Trace":
        """Sub-trace covering [start, end), re-based to t=0."""
        if not 0 <= start < end <= self.duration:
            raise ValueError(f"invalid slice [{start}, {end})")
        mask = (self.arrivals >= start) & (self.arrivals < end)
        return Trace(
            name=f"{self.name}[{start:g}:{end:g}]",
            arrivals=self.arrivals[mask] - start,
            duration=end - start,
        )

    def overlay_burst(
        self, start: float, length: float, factor: float, seed: int = 0
    ) -> "Trace":
        """Trace with the arrival rate multiplied by ``factor`` over a window.

        Models the paper's "unpredictable events": for ``factor > 1`` extra
        Poisson arrivals are superposed on [start, start+length) so the
        windowed rate lands at roughly ``factor`` times the original;
        ``factor < 1`` thins the window instead.  Deterministic in ``seed``
        (and the trace name), so declaratively composed traces replay
        identically across sweep worker processes.
        """
        if length <= 0:
            raise ValueError("burst length must be > 0")
        if factor <= 0:
            raise ValueError("burst factor must be > 0")
        if not 0 <= start < self.duration:
            raise ValueError(
                f"burst start {start} outside trace duration {self.duration}"
            )
        end = min(start + length, self.duration)
        rng = np.random.default_rng(
            (stable_hash(f"{self.name}|burst") + seed) % 2**32
        )
        in_window = (self.arrivals >= start) & (self.arrivals < end)
        if factor < 1:
            keep = ~in_window | (rng.random(len(self)) < factor)
            arrivals = self.arrivals[keep]
        else:
            n_extra = rng.poisson((factor - 1.0) * int(in_window.sum()))
            extra = rng.uniform(start, end, size=n_extra)
            arrivals = np.sort(np.concatenate([self.arrivals, extra]))
        return Trace(
            name=f"{self.name}@{start:g}x{factor:g}",
            arrivals=arrivals,
            duration=self.duration,
        )

    def scaled(self, factor: float) -> "Trace":
        """Trace with the arrival *rate* scaled by ``factor`` via thinning
        (factor < 1) or time compression is not used — rate scaling keeps
        the temporal shape, repeating arrivals for factor > 1 is avoided by
        jittered replication at trace-generation time instead."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        if factor > 1:
            raise ValueError(
                "rate up-scaling must be done at generation time; "
                "Trace.scaled only supports thinning (factor <= 1)"
            )
        # hash() is salted per process (PYTHONHASHSEED), which would make
        # thinning non-deterministic across sweep worker processes; derive
        # the seed from a stable digest of the name instead.
        rng = np.random.default_rng(stable_hash(self.name) % 2**32)
        keep = rng.random(len(self)) < factor
        return Trace(
            name=f"{self.name}x{factor:g}",
            arrivals=self.arrivals[keep],
            duration=self.duration,
        )

    @staticmethod
    def concat(traces: "list[Trace] | tuple[Trace, ...]",
               name: str | None = None) -> "Trace":
        """Concatenate traces end to end.

        Each trace is re-based after the previous one's *full* duration
        (not its last arrival), so quiet tails are preserved.  Matches
        :class:`~repro.workload.source.ConcatSource` bitwise.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("concat needs at least one trace")
        parts: list[np.ndarray] = []
        offset = 0.0
        for trace in traces:
            parts.append(trace.arrivals + offset)
            offset += trace.duration
        return Trace(
            name=name or "+".join(t.name for t in traces),
            arrivals=np.concatenate(parts),
            duration=offset,
        )

    def splice(self, other: "Trace", at: float) -> "Trace":
        """Replace the window ``[at, at + other.duration)`` with ``other``.

        The paper's trace-composition gap beyond bursts: drop a recorded
        incident (or any other trace) into a steady baseline at a chosen
        time.  Arrivals of ``self`` inside the window are discarded,
        ``other``'s arrivals shift to start at ``at``, and the duration
        extends if the splice runs past the end.  Deterministic — no RNG.
        Matches :class:`~repro.workload.source.SpliceSource` bitwise.
        """
        if not 0 <= at <= self.duration:
            raise ValueError(
                f"splice point {at} outside trace duration {self.duration}"
            )
        end = at + other.duration
        return Trace(
            name=f"{self.name}<-{other.name}@{at:g}",
            arrivals=np.concatenate([
                self.arrivals[self.arrivals < at],
                other.arrivals + at,
                self.arrivals[self.arrivals >= end],
            ]),
            duration=max(self.duration, end),
        )
