"""Synthetic trace generators matched to the paper's workload shapes.

The paper replays the Wikipedia access trace (stable, periodic; rate CV
about 0.47), the Twitter access trace (bursty; CV about 1.0, including a
sudden ~2x rate step around t=850 s that drives Figure 2d) and the Azure
Functions trace (highly bursty, spiky; CV about 1.3).  We cannot ship those
datasets, so each generator produces an inhomogeneous-Poisson arrival
process whose *rate envelope* reproduces the published characteristics:
mean level, periodicity, burst amplitude and burstiness (CV band).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .trace import Trace

RateFn = Callable[[np.ndarray], np.ndarray]

#: Name -> generator registry.  Every generator accepts ``base_rate``,
#: ``duration``, ``seed`` and ``name`` keywords so scenarios can declare a
#: trace as a name plus keyword arguments instead of a live :class:`Trace`.
TRACES: dict[str, Callable[..., Trace]] = {}


def register_trace(name: str) -> Callable[[Callable[..., Trace]], Callable[..., Trace]]:
    """Decorator registering a trace generator under ``name``.

    Mirrors :func:`repro.pipeline.applications.register_application` and
    :func:`repro.policies.registry.register_policy` — the three registries
    that together make a declarative :class:`~repro.experiments.scenario.
    Scenario` resolvable from plain strings in any process.
    """

    def decorate(fn: Callable[..., Trace]) -> Callable[..., Trace]:
        if name in TRACES:
            raise ValueError(f"trace {name!r} already registered")
        TRACES[name] = fn
        return fn

    return decorate


def known_traces() -> list[str]:
    """All registered trace generator names."""
    return sorted(TRACES)


def arrivals_from_rate(
    rate_fn: RateFn,
    duration: float,
    peak_rate: float,
    seed: int,
    name: str,
) -> Trace:
    """Inhomogeneous Poisson arrivals via Lewis-Shedler thinning."""
    if duration <= 0 or peak_rate <= 0:
        raise ValueError("duration and peak_rate must be > 0")
    rng = np.random.default_rng(seed)
    # Candidate homogeneous process at the peak rate, generated in blocks.
    n_expected = int(peak_rate * duration * 1.2) + 16
    gaps = rng.exponential(1.0 / peak_rate, size=n_expected)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration:
        more = rng.exponential(1.0 / peak_rate, size=n_expected // 2 + 16)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    times = times[times < duration]
    # Thin by the instantaneous rate.
    lam = rate_fn(times)
    if np.any(lam > peak_rate * (1 + 1e-9)):
        raise ValueError("rate_fn exceeds peak_rate; thinning would be biased")
    keep = rng.random(times.size) < lam / peak_rate
    return Trace(name=name, arrivals=times[keep], duration=duration)


def poisson_trace(
    rate: float, duration: float, seed: int = 0, name: str = "poisson"
) -> Trace:
    """Constant-rate Poisson arrivals."""
    return arrivals_from_rate(
        lambda t: np.full_like(t, rate), duration, rate, seed, name
    )


def constant_trace(
    rate: float, duration: float, name: str = "constant"
) -> Trace:
    """Perfectly regular arrivals at ``rate`` (deterministic spacing)."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be > 0")
    n = int(rate * duration)
    return Trace(name=name, arrivals=np.arange(n) / rate, duration=duration)


#: Name -> rate-envelope builder ``(base_rate, duration, seed, **kwargs)
#: -> (rate_fn, peak_rate)``.  The envelope is the deterministic part of
#: a generator (its shape parameters draw from their own seeded rng);
#: eager generation samples it via Lewis-Shedler thinning, streaming
#: generation via windowed regeneration — one envelope, two samplers.
ENVELOPES: dict[str, Callable[..., tuple[RateFn, float]]] = {}


def _wiki_envelope(
    base_rate: float, duration: float, seed: int
) -> tuple[RateFn, float]:
    rng = np.random.default_rng(seed + 1)
    phase = rng.uniform(0, 2 * np.pi)
    period = duration / 1.5

    def rate(t: np.ndarray) -> np.ndarray:
        swing = 0.45 * np.sin(2 * np.pi * t / period + phase)
        ripple = 0.10 * np.sin(2 * np.pi * t / (period / 7.3) + 2 * phase)
        return base_rate * np.clip(1.0 + swing + ripple, 0.05, None)

    return rate, base_rate * (1.0 + 0.45 + 0.10) * 1.01


ENVELOPES["wiki"] = _wiki_envelope


@register_trace("wiki")
def wiki_trace(
    base_rate: float = 100.0,
    duration: float = 600.0,
    seed: int = 0,
    name: str = "wiki",
) -> Trace:
    """Wikipedia-like trace: smooth periodic swings, low burstiness.

    Rate oscillates between roughly 0.45x and 2.1x the base rate over long
    periods with mild noise, giving a windowed-rate CV near 0.47 (the value
    the paper reports for its wiki trace).
    """
    rate, peak = _wiki_envelope(base_rate, duration, seed)
    return arrivals_from_rate(rate, duration, peak, seed, name)


@register_trace("tweet")
def tweet_trace(
    base_rate: float = 100.0,
    duration: float = 600.0,
    seed: int = 0,
    name: str = "tweet",
    burst_at: float | None = None,
    burst_factor: float = 2.0,
    burst_len: float | None = None,
) -> Trace:
    """Twitter-like trace: moderate noise plus a sudden rate step burst.

    Reproduces the paper's key feature (Figure 2d / Figure 10): the input
    rate roughly doubles abruptly (default at ~70% through the trace) and
    stays elevated for a sustained window, on top of bursty fluctuations
    (windowed-rate CV near 1.0).
    """
    rate, peak = _tweet_envelope(
        base_rate, duration, seed,
        burst_at=burst_at, burst_factor=burst_factor, burst_len=burst_len,
    )
    return arrivals_from_rate(rate, duration, peak, seed, name)


def _tweet_envelope(
    base_rate: float,
    duration: float,
    seed: int,
    burst_at: float | None = None,
    burst_factor: float = 2.0,
    burst_len: float | None = None,
) -> tuple[RateFn, float]:
    rng = np.random.default_rng(seed + 2)
    burst_at = duration * 0.7 if burst_at is None else burst_at
    burst_len = duration * 0.12 if burst_len is None else burst_len
    # Bursty modulating noise: lognormal steps held for ~5 s.
    n_steps = max(2, int(duration / 5.0) + 1)
    steps = rng.lognormal(mean=-0.045, sigma=0.30, size=n_steps)

    def rate(t: np.ndarray) -> np.ndarray:
        idx = np.minimum((t / 5.0).astype(int), n_steps - 1)
        level = base_rate * steps[idx]
        in_burst = (t >= burst_at) & (t < burst_at + burst_len)
        return np.where(in_burst, level * burst_factor, level)

    return rate, base_rate * float(steps.max()) * burst_factor * 1.01


ENVELOPES["tweet"] = _tweet_envelope


@register_trace("azure")
def azure_trace(
    base_rate: float = 100.0,
    duration: float = 600.0,
    seed: int = 0,
    name: str = "azure",
) -> Trace:
    """Azure-Functions-like trace: spiky, the burstiest of the three.

    Short exponential-duration spikes of 1.6-2.6x amplitude arrive on top
    of a noisy baseline; the paper's azure trace peaks at roughly 1.5x its
    mean rate (Figure 10, left).
    """
    rate, peak = _azure_envelope(base_rate, duration, seed)
    return arrivals_from_rate(rate, duration, peak, seed, name)


def _azure_envelope(
    base_rate: float, duration: float, seed: int
) -> tuple[RateFn, float]:
    rng = np.random.default_rng(seed + 3)
    n_steps = max(2, int(duration / 3.0) + 1)
    steps = rng.lognormal(mean=-0.061, sigma=0.35, size=n_steps)
    # Poisson-arriving spikes.
    n_spikes = max(1, int(duration / 45.0))
    spike_times = np.sort(rng.uniform(0, duration * 0.9, size=n_spikes))
    spike_lens = rng.exponential(6.0, size=n_spikes) + 2.0
    spike_amps = rng.uniform(1.6, 2.6, size=n_spikes)

    def rate(t: np.ndarray) -> np.ndarray:
        idx = np.minimum((t / 3.0).astype(int), n_steps - 1)
        level = base_rate * steps[idx]
        boost = np.ones_like(t)
        for st, ln, amp in zip(spike_times, spike_lens, spike_amps):
            mask = (t >= st) & (t < st + ln)
            boost = np.where(mask, np.maximum(boost, amp), boost)
        return level * boost

    return rate, base_rate * float(steps.max()) * 2.6 * 1.01


ENVELOPES["azure"] = _azure_envelope


def step_trace(
    rates: list[tuple[float, float]],
    duration: float,
    seed: int = 0,
    name: str = "step",
) -> Trace:
    """Piecewise-constant-rate Poisson trace.

    ``rates`` is a list of (start_time, rate) change-points; the first entry
    must start at 0.  Used by the stress test (Figure 14a) and unit tests.
    """
    if not rates or rates[0][0] != 0:
        raise ValueError("rates must start with a change-point at t=0")
    starts = np.array([s for s, _ in rates])
    levels = np.array([r for _, r in rates])
    if np.any(np.diff(starts) <= 0):
        raise ValueError("change-points must be strictly increasing")

    def rate(t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(starts, t, side="right") - 1
        return levels[idx]

    return arrivals_from_rate(rate, duration, float(levels.max()), seed, name)


# Synthetic baselines registered under the same pattern as the paper's
# traces, adapted to the uniform (base_rate, duration, seed, name) keyword
# signature so scenario files can declare them by name.
@register_trace("poisson")
def _poisson_by_name(
    base_rate: float, duration: float, seed: int = 0, name: str = "poisson"
) -> Trace:
    return poisson_trace(rate=base_rate, duration=duration, seed=seed, name=name)


@register_trace("constant")
def _constant_by_name(
    base_rate: float, duration: float, seed: int = 0, name: str = "constant"
) -> Trace:
    # Deterministic spacing: the seed is accepted for interface uniformity.
    return constant_trace(rate=base_rate, duration=duration, name=name)


@register_trace("step")
def _step_by_name(
    base_rate: float,
    duration: float,
    seed: int = 0,
    name: str = "step",
    rates: list[tuple[float, float]] | None = None,
) -> Trace:
    """Piecewise-constant trace; ``rates`` entries scale ``base_rate``.

    Declared as ``(start_time, rate_multiplier)`` change-points so the same
    step shape calibrates with any base rate.  Defaults to a flat 1.0x.
    """
    shape = rates if rates is not None else [(0.0, 1.0)]
    absolute = [(float(t), float(m) * base_rate) for t, m in shape]
    return step_trace(rates=absolute, duration=duration, seed=seed, name=name)


def _poisson_envelope(
    base_rate: float, duration: float, seed: int
) -> tuple[RateFn, float]:
    return (lambda t: np.full_like(t, base_rate)), base_rate


ENVELOPES["poisson"] = _poisson_envelope


def _step_envelope(
    base_rate: float,
    duration: float,
    seed: int,
    rates: list[tuple[float, float]] | None = None,
) -> tuple[RateFn, float]:
    shape = rates if rates is not None else [(0.0, 1.0)]
    if not shape or shape[0][0] != 0:
        raise ValueError("rates must start with a change-point at t=0")
    starts = np.array([float(s) for s, _ in shape])
    levels = np.array([float(m) * base_rate for _, m in shape])
    if np.any(np.diff(starts) <= 0):
        raise ValueError("change-points must be strictly increasing")

    def rate(t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(starts, t, side="right") - 1
        return levels[idx]

    return rate, float(levels.max())


ENVELOPES["step"] = _step_envelope


def get_trace(
    name: str, base_rate: float, duration: float, seed: int = 0, **kwargs
) -> Trace:
    """Build a registered trace; extra keywords reach the generator."""
    try:
        gen = TRACES[name]
    except KeyError:
        raise KeyError(f"unknown trace {name!r}; known: {sorted(TRACES)}") from None
    return gen(base_rate=base_rate, duration=duration, seed=seed, name=name, **kwargs)


def stream_trace(
    name: str,
    base_rate: float,
    duration: float,
    seed: int = 0,
    *,
    window: float = 16.0,
    **kwargs,
):
    """Build a registered trace as a lazy :class:`~repro.workload.source.
    ArrivalSource` instead of a materialized :class:`Trace`.

    ``constant`` streams byte-identically to its eager form (no RNG);
    every envelope-backed generator (``poisson``/``wiki``/``tweet``/
    ``azure``/``step``) streams via windowed regeneration — the same
    inhomogeneous Poisson process, a different (seed-deterministic)
    realization.  Registered generators without an envelope fall back to
    materializing once and streaming the result, so the contract is
    total over the registry.
    """
    from .source import ConstantSource, GeneratorSource, TraceSource

    if name == "constant":
        return ConstantSource(rate=base_rate, duration=duration, name=name)
    envelope = ENVELOPES.get(name)
    if envelope is None:
        if name not in TRACES:
            raise KeyError(
                f"unknown trace {name!r}; known: {sorted(TRACES)}"
            )
        return TraceSource(
            get_trace(name, base_rate, duration, seed=seed, **kwargs)
        )
    rate_fn, peak = envelope(
        base_rate=base_rate, duration=duration, seed=seed, **kwargs
    )
    return GeneratorSource(
        rate_fn, duration, peak, seed=seed, name=name, window=window
    )
