"""Streaming arrival sources: lazy, re-iterable, flat-memory workloads.

An :class:`ArrivalSource` is the streaming counterpart of an eager
:class:`~repro.workload.trace.Trace`: an ordered stream of request
send-times generated (or read from disk) in bounded chunks, so a
million-request workload replays in O(chunk) memory instead of one
materialized array plus one pre-scheduled heap event per arrival.

Sources are *re-iterable* and deterministic: every ``chunks()`` call
restarts generation from the seed, so a source can be counted for
provisioning, then replayed, then counted again, always yielding the
same stream.  Transforms (thinning, burst overlays, slicing, concat,
splice) compose lazily and — where the eager :class:`Trace` method has
an RNG — consume random draws in the same order, so a streamed
transform of a materialized trace is *byte-identical* to the eager
method (numpy's PCG64 fills ``random(k1)`` then ``random(k2)`` exactly
like one ``random(k1+k2)`` call).

Synthetic generation itself cannot replicate the eager Lewis-Shedler
draw order without materializing, so :class:`GeneratorSource` is a
distinct, explicitly opt-in mode: each fixed window regenerates from
``default_rng([seed, stable_hash(name), window_index])`` — statistically
exact (Poisson processes are independent across disjoint windows) and
seekable, but a different realization than the eager generator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..simulation.rng import stable_hash
from .trace import Trace

#: Arrivals held in memory per generation step (not a correctness knob).
CHUNK = 8192

RateFn = Callable[[np.ndarray], np.ndarray]


class ArrivalSource:
    """A lazy, re-iterable stream of sorted arrival times in seconds.

    Subclasses implement :meth:`chunks`, yielding sorted float64 arrays
    that are globally nondecreasing across chunk boundaries.  Everything
    else — iteration, counting, materialization, composition — is
    shared.
    """

    def __init__(self, name: str, duration: float) -> None:
        if duration <= 0:
            raise ValueError("source duration must be > 0")
        self.name = name
        self.duration = float(duration)
        self._count: int | None = None

    def chunks(self) -> Iterator[np.ndarray]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[float]:
        for chunk in self.chunks():
            yield from chunk.tolist()

    def count(self) -> int:
        """Total arrivals (one streaming pass, cached — sources are
        deterministic, so the count never changes)."""
        if self._count is None:
            self._count = sum(int(c.size) for c in self.chunks())
        return self._count

    @property
    def mean_rate(self) -> float:
        """Average requests/second (triggers one counting pass)."""
        return self.count() / self.duration

    def materialize(self, name: str | None = None) -> Trace:
        """Collect the whole stream into an eager :class:`Trace` (O(n))."""
        parts = list(self.chunks())
        arrivals = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return Trace(
            name=name or self.name, arrivals=arrivals, duration=self.duration
        )

    # -- composable transforms (mirror the eager Trace methods) -----------

    def scaled(self, factor: float) -> "ArrivalSource":
        """Rate thinning; byte-identical to :meth:`Trace.scaled`."""
        return ThinnedSource(self, factor)

    def overlay_burst(
        self, start: float, length: float, factor: float, seed: int = 0
    ) -> "ArrivalSource":
        """Burst overlay; byte-identical to :meth:`Trace.overlay_burst`."""
        return BurstSource(self, start, length, factor, seed=seed)

    def slice(self, start: float, end: float) -> "ArrivalSource":
        """Sub-stream covering [start, end), re-based to t=0."""
        return SliceSource(self, start, end)

    def spliced(self, other: "ArrivalSource", at: float) -> "ArrivalSource":
        """Replace [at, at+other.duration) with ``other``'s stream."""
        return SpliceSource(self, other, at)


class TraceSource(ArrivalSource):
    """An eager :class:`Trace` viewed through the streaming protocol."""

    def __init__(self, trace: Trace) -> None:
        super().__init__(trace.name, trace.duration)
        self.trace = trace
        self._count = len(trace)

    def chunks(self) -> Iterator[np.ndarray]:
        arrivals = self.trace.arrivals
        for lo in range(0, arrivals.size, CHUNK):
            yield arrivals[lo:lo + CHUNK]


def ensure_source(workload: "Trace | ArrivalSource") -> ArrivalSource:
    """Adapt either workload representation to the streaming protocol."""
    if isinstance(workload, ArrivalSource):
        return workload
    return TraceSource(workload)


class ConstantSource(ArrivalSource):
    """Perfectly regular arrivals; byte-identical to ``constant_trace``."""

    def __init__(self, rate: float, duration: float, name: str = "constant") -> None:
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be > 0")
        super().__init__(name, duration)
        self.rate = float(rate)
        self._n = int(rate * duration)
        self._count = self._n

    def chunks(self) -> Iterator[np.ndarray]:
        for lo in range(0, self._n, CHUNK):
            hi = min(lo + CHUNK, self._n)
            yield np.arange(lo, hi) / self.rate


class GeneratorSource(ArrivalSource):
    """Windowed inhomogeneous-Poisson arrivals in O(window) memory.

    Window ``w`` (covering ``[w*window, (w+1)*window)``) draws its
    candidate count, positions and thinning from
    ``default_rng([seed, stable_hash(name), w])`` — every window is
    independent of the rest of the stream, so the source is re-iterable,
    seekable and embarrassingly shardable by time.  Statistically this
    is the same inhomogeneous Poisson process the eager generators
    sample (disjoint windows of a Poisson process are independent), but
    a *different realization* than the eager Lewis-Shedler draw order —
    which is why streaming generation is opt-in per scenario.
    """

    def __init__(
        self,
        rate_fn: RateFn,
        duration: float,
        peak_rate: float,
        seed: int,
        name: str,
        window: float = 16.0,
    ) -> None:
        if peak_rate <= 0:
            raise ValueError("peak_rate must be > 0")
        if window <= 0:
            raise ValueError("window must be > 0")
        super().__init__(name, duration)
        self.rate_fn = rate_fn
        self.peak_rate = float(peak_rate)
        self.seed = int(seed)
        self.window = float(window)

    def chunks(self) -> Iterator[np.ndarray]:
        key = stable_hash(self.name)
        n_windows = int(np.ceil(self.duration / self.window))
        for w in range(n_windows):
            start = w * self.window
            end = min(start + self.window, self.duration)
            rng = np.random.default_rng([self.seed, key, w])
            n = rng.poisson(self.peak_rate * (end - start))
            times = np.sort(rng.uniform(start, end, size=n))
            lam = self.rate_fn(times)
            if np.any(lam > self.peak_rate * (1 + 1e-9)):
                raise ValueError(
                    "rate_fn exceeds peak_rate; thinning would be biased"
                )
            keep = rng.random(n) < lam / self.peak_rate
            out = times[keep]
            if out.size:
                yield out


class ThinnedSource(ArrivalSource):
    """Streaming counterpart of :meth:`Trace.scaled` (same RNG stream)."""

    def __init__(self, source: ArrivalSource, factor: float) -> None:
        if factor <= 0:
            raise ValueError("factor must be > 0")
        if factor > 1:
            raise ValueError(
                "rate up-scaling must be done at generation time; "
                "thinning only supports factor <= 1"
            )
        super().__init__(f"{source.name}x{factor:g}", source.duration)
        self.source = source
        self.factor = float(factor)

    def chunks(self) -> Iterator[np.ndarray]:
        # Same seed derivation as Trace.scaled; per-chunk random() calls
        # consume the identical PCG64 stream one big call would.
        rng = np.random.default_rng(stable_hash(self.source.name) % 2**32)
        for chunk in self.source.chunks():
            out = chunk[rng.random(chunk.size) < self.factor]
            if out.size:
                yield out


class BurstSource(ArrivalSource):
    """Streaming counterpart of :meth:`Trace.overlay_burst`.

    ``factor < 1`` thins the window chunk-by-chunk (drawing one random
    per arrival, in and out of the window, exactly like the eager
    method).  ``factor > 1`` must know the window's arrival count before
    drawing the extras, so the window's own arrivals are buffered — the
    only transform whose memory scales with a declared burst window
    rather than the chunk size.
    """

    def __init__(
        self,
        source: ArrivalSource,
        start: float,
        length: float,
        factor: float,
        seed: int = 0,
    ) -> None:
        if length <= 0:
            raise ValueError("burst length must be > 0")
        if factor <= 0:
            raise ValueError("burst factor must be > 0")
        if not 0 <= start < source.duration:
            raise ValueError(
                f"burst start {start} outside trace duration {source.duration}"
            )
        super().__init__(
            f"{source.name}@{start:g}x{factor:g}", source.duration
        )
        self.source = source
        self.start = float(start)
        self.end = min(start + length, source.duration)
        self.factor = float(factor)
        self.seed = int(seed)

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(
            (stable_hash(f"{self.source.name}|burst") + self.seed) % 2**32
        )

    def chunks(self) -> Iterator[np.ndarray]:
        rng = self._rng()
        if self.factor < 1:
            for chunk in self.source.chunks():
                r = rng.random(chunk.size)
                in_window = (chunk >= self.start) & (chunk < self.end)
                out = chunk[~in_window | (r < self.factor)]
                if out.size:
                    yield out
            return
        window_parts: list[np.ndarray] = []
        flushed = False
        for chunk in self.source.chunks():
            before = chunk[chunk < self.start]
            if before.size:
                yield before
            in_window = chunk[(chunk >= self.start) & (chunk < self.end)]
            if in_window.size:
                window_parts.append(in_window)
            after = chunk[chunk >= self.end]
            if after.size:
                if not flushed:
                    yield from self._flush(rng, window_parts)
                    flushed = True
                yield after
        if not flushed:
            yield from self._flush(rng, window_parts)

    def _flush(
        self, rng: np.random.Generator, parts: list[np.ndarray]
    ) -> Iterator[np.ndarray]:
        in_window = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        n_extra = rng.poisson((self.factor - 1.0) * int(in_window.size))
        extra = rng.uniform(self.start, self.end, size=n_extra)
        merged = np.sort(np.concatenate([in_window, extra]))
        parts.clear()
        if merged.size:
            yield merged


class SliceSource(ArrivalSource):
    """Streaming counterpart of :meth:`Trace.slice` ([start, end), re-based)."""

    def __init__(self, source: ArrivalSource, start: float, end: float) -> None:
        if not 0 <= start < end <= source.duration:
            raise ValueError(f"invalid slice [{start}, {end})")
        super().__init__(
            f"{source.name}[{start:g}:{end:g}]", end - start
        )
        self.source = source
        self.start = float(start)
        self.end = float(end)

    def chunks(self) -> Iterator[np.ndarray]:
        for chunk in self.source.chunks():
            if chunk.size and chunk[0] >= self.end:
                return  # sorted stream: nothing further can fall in range
            out = chunk[(chunk >= self.start) & (chunk < self.end)]
            if out.size:
                yield out - self.start


class ConcatSource(ArrivalSource):
    """End-to-end concatenation; each source re-based after the previous
    one's full duration.  Matches :meth:`Trace.concat` bitwise."""

    def __init__(
        self, sources: Sequence[ArrivalSource], name: str | None = None
    ) -> None:
        sources = list(sources)
        if not sources:
            raise ValueError("concat needs at least one source")
        super().__init__(
            name or "+".join(s.name for s in sources),
            sum(s.duration for s in sources),
        )
        self.sources = sources

    def chunks(self) -> Iterator[np.ndarray]:
        offset = 0.0
        for source in self.sources:
            for chunk in source.chunks():
                yield chunk + offset
            offset += source.duration


class SpliceSource(ArrivalSource):
    """Replace ``[at, at + other.duration)`` of ``base`` with ``other``.

    Matches :meth:`Trace.splice` bitwise.  The base stream is iterated
    twice (once for the prefix, once for the suffix) — sources are
    re-iterable, so this stays flat-memory.
    """

    def __init__(
        self, base: ArrivalSource, other: ArrivalSource, at: float
    ) -> None:
        if not 0 <= at <= base.duration:
            raise ValueError(
                f"splice point {at} outside base duration {base.duration}"
            )
        self._end = at + other.duration
        super().__init__(
            f"{base.name}<-{other.name}@{at:g}",
            max(base.duration, self._end),
        )
        self.base = base
        self.other = other
        self.at = float(at)

    def chunks(self) -> Iterator[np.ndarray]:
        for chunk in self.base.chunks():
            if chunk.size and chunk[0] >= self.at:
                break
            out = chunk[chunk < self.at]
            if out.size:
                yield out
        for chunk in self.other.chunks():
            if chunk.size:
                yield chunk + self.at
        for chunk in self.base.chunks():
            if chunk.size and chunk[-1] < self._end:
                continue
            out = chunk[chunk >= self._end]
            if out.size:
                yield out


class FileSource(ArrivalSource):
    """Chunked replay of an on-disk trace file (CSV or JSONL).

    The file must be sorted (validated while streaming — production
    arrival logs are); an optional sha256 ``digest`` pins the exact
    bytes, which is how file-backed :class:`~repro.experiments.scenario.
    TraceSpec`\\ s stay frozen and cache-fingerprintable.  ``duration``
    falls back to the file header, then to one scan for the last
    timestamp.
    """

    def __init__(
        self,
        path: str | Path,
        name: str | None = None,
        duration: float | None = None,
        digest: str | None = None,
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise FileNotFoundError(f"trace file not found: {self.path}")
        if digest is not None:
            actual = trace_file_digest(self.path)
            if actual != digest:
                raise ValueError(
                    f"trace file {self.path} digest mismatch: expected "
                    f"{digest}, file has {actual} — the file changed since "
                    "the scenario was declared"
                )
        self.digest = digest
        header_name, header_duration = self._read_header()
        if duration is None:
            duration = header_duration
        if duration is None:
            last = None
            for chunk in self._raw_chunks(validate=False):
                if chunk.size:
                    last = float(chunk[-1])
            if last is None:
                raise ValueError(f"trace file {self.path} holds no arrivals")
            duration = last + 1e-9
        super().__init__(
            name or header_name or self.path.stem, float(duration)
        )

    def _is_jsonl(self) -> bool:
        return self.path.suffix.lower() in (".jsonl", ".ndjson")

    def _read_header(self) -> tuple[str | None, float | None]:
        name: str | None = None
        duration: float | None = None
        with self.path.open() as fh:
            first = fh.readline().strip()
        if not first:
            return None, None
        if self._is_jsonl():
            meta = json.loads(first)
            if isinstance(meta, dict) and "t" not in meta:
                name = str(meta["name"]) if "name" in meta else None
                if meta.get("duration") is not None:
                    duration = float(meta["duration"])
        elif first.startswith("#"):
            for token in first[1:].split():
                if token.startswith("duration="):
                    duration = float(token.split("=", 1)[1])
                elif token.startswith("trace="):
                    name = token.split("=", 1)[1]
        return name, duration

    def _parse(self, line: str, lineno: int) -> float | None:
        if self._is_jsonl():
            value = json.loads(line)
            if isinstance(value, dict):
                if "t" not in value:
                    if lineno == 1:  # the meta header
                        return None
                    raise ValueError(
                        f"{self.path}:{lineno}: arrival object missing 't'"
                    )
                return float(value["t"])
            return float(value)
        if line.startswith("#"):
            return None
        return float(line)

    def _raw_chunks(self, validate: bool = True) -> Iterator[np.ndarray]:
        buf: list[float] = []
        last = -float("inf")
        with self.path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                t = self._parse(line, lineno)
                if t is None:
                    continue
                if validate:
                    if t < last:
                        raise ValueError(
                            f"{self.path}:{lineno}: arrivals not sorted "
                            f"({t!r} after {last!r}); sort the file or use "
                            "load_trace_csv/load_trace_jsonl to materialize"
                        )
                    if t < 0 or t > self.duration:
                        raise ValueError(
                            f"{self.path}:{lineno}: arrival {t!r} outside "
                            f"[0, {self.duration}]"
                        )
                    last = t
                buf.append(t)
                if len(buf) >= CHUNK:
                    yield np.asarray(buf, dtype=np.float64)
                    buf = []
        if buf:
            yield np.asarray(buf, dtype=np.float64)

    def chunks(self) -> Iterator[np.ndarray]:
        return self._raw_chunks(validate=True)


def concat_sources(
    sources: Iterable[ArrivalSource], name: str | None = None
) -> ConcatSource:
    """Concatenate sources end to end (see :class:`ConcatSource`)."""
    return ConcatSource(list(sources), name=name)


def trace_file_digest(path: str | Path) -> str:
    """sha256 hex digest of a trace file's bytes (streamed)."""
    import hashlib

    h = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()
