"""Workload traces and generators."""

from .generators import (
    TRACES,
    arrivals_from_rate,
    azure_trace,
    constant_trace,
    get_trace,
    known_traces,
    poisson_trace,
    register_trace,
    step_trace,
    tweet_trace,
    wiki_trace,
)
from .io import load_trace_csv, load_trace_json, save_trace_csv, save_trace_json
from .replay import replay
from .trace import Trace

__all__ = [
    "TRACES",
    "Trace",
    "arrivals_from_rate",
    "azure_trace",
    "constant_trace",
    "get_trace",
    "known_traces",
    "load_trace_csv",
    "load_trace_json",
    "register_trace",
    "save_trace_csv",
    "save_trace_json",
    "poisson_trace",
    "replay",
    "step_trace",
    "tweet_trace",
    "wiki_trace",
]
