"""Trace persistence: save/load traces as CSV or JSON.

Lets users replay their own production arrival logs through the simulator
(one timestamp per request), and ship reproducible trace files alongside
experiment results.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trace import Trace


def save_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write one arrival timestamp per line, with a comment header."""
    p = Path(path)
    lines = [f"# trace={trace.name} duration={float(trace.duration)!r}"]
    lines.extend(repr(float(t)) for t in trace.arrivals)
    p.write_text("\n".join(lines) + "\n")


def load_trace_csv(path: str | Path, name: str | None = None,
                   duration: float | None = None) -> Trace:
    """Read a CSV trace written by :func:`save_trace_csv` (or any file with
    one timestamp per line; ``#`` lines are ignored)."""
    p = Path(path)
    header_duration: float | None = None
    header_name: str | None = None
    arrivals: list[float] = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("duration="):
                    header_duration = float(token.split("=", 1)[1])
                elif token.startswith("trace="):
                    header_name = token.split("=", 1)[1]
            continue
        arrivals.append(float(line))
    arr = np.asarray(sorted(arrivals))
    final_duration = duration or header_duration
    if final_duration is None:
        final_duration = float(arr[-1]) + 1e-9 if arr.size else 0.0
    return Trace(
        name=name or header_name or p.stem,
        arrivals=arr,
        duration=final_duration,
    )


def save_trace_jsonl(trace: Trace, path: str | Path) -> None:
    """Write one arrival per line as ``{"t": ...}`` after a meta header.

    The line-oriented sibling of :func:`save_trace_csv` for tooling that
    speaks JSONL; both formats replay chunked through
    :class:`~repro.workload.source.FileSource`.
    """
    with Path(path).open("w") as fh:
        fh.write(json.dumps({"name": trace.name,
                             "duration": float(trace.duration)}) + "\n")
        for t in trace.arrivals.tolist():
            fh.write(json.dumps({"t": t}) + "\n")


def load_trace_jsonl(path: str | Path, name: str | None = None,
                     duration: float | None = None) -> Trace:
    """Read a JSONL trace written by :func:`save_trace_jsonl` (arrivals
    are sorted, so unordered logs load too)."""
    header_name: str | None = None
    header_duration: float | None = None
    arrivals: list[float] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            value = json.loads(line)
            if isinstance(value, dict) and "t" not in value:
                if lineno != 1:
                    raise ValueError(
                        f"{path}:{lineno}: arrival object missing 't'"
                    )
                header_name = value.get("name")
                if value.get("duration") is not None:
                    header_duration = float(value["duration"])
                continue
            arrivals.append(
                float(value["t"]) if isinstance(value, dict) else float(value)
            )
    arr = np.asarray(sorted(arrivals))
    final_duration = duration or header_duration
    if final_duration is None:
        final_duration = float(arr[-1]) + 1e-9 if arr.size else 0.0
    return Trace(
        name=name or header_name or Path(path).stem,
        arrivals=arr,
        duration=final_duration,
    )


def save_trace_json(trace: Trace, path: str | Path) -> None:
    """Write the trace as a self-describing JSON document."""
    Path(path).write_text(
        json.dumps(
            {
                "name": trace.name,
                "duration": trace.duration,
                "arrivals": trace.arrivals.tolist(),
            }
        )
    )


def load_trace_json(path: str | Path) -> Trace:
    """Read a JSON trace written by :func:`save_trace_json`."""
    data = json.loads(Path(path).read_text())
    return Trace(
        name=str(data["name"]),
        arrivals=np.asarray(data["arrivals"], dtype=float),
        duration=float(data["duration"]),
    )
