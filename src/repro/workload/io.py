"""Trace persistence: save/load traces as CSV or JSON.

Lets users replay their own production arrival logs through the simulator
(one timestamp per request), and ship reproducible trace files alongside
experiment results.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trace import Trace


def save_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write one arrival timestamp per line, with a comment header."""
    p = Path(path)
    lines = [f"# trace={trace.name} duration={float(trace.duration)!r}"]
    lines.extend(repr(float(t)) for t in trace.arrivals)
    p.write_text("\n".join(lines) + "\n")


def load_trace_csv(path: str | Path, name: str | None = None,
                   duration: float | None = None) -> Trace:
    """Read a CSV trace written by :func:`save_trace_csv` (or any file with
    one timestamp per line; ``#`` lines are ignored)."""
    p = Path(path)
    header_duration: float | None = None
    header_name: str | None = None
    arrivals: list[float] = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                if token.startswith("duration="):
                    header_duration = float(token.split("=", 1)[1])
                elif token.startswith("trace="):
                    header_name = token.split("=", 1)[1]
            continue
        arrivals.append(float(line))
    arr = np.asarray(sorted(arrivals))
    final_duration = duration or header_duration
    if final_duration is None:
        final_duration = float(arr[-1]) + 1e-9 if arr.size else 0.0
    return Trace(
        name=name or header_name or p.stem,
        arrivals=arr,
        duration=final_duration,
    )


def save_trace_json(trace: Trace, path: str | Path) -> None:
    """Write the trace as a self-describing JSON document."""
    Path(path).write_text(
        json.dumps(
            {
                "name": trace.name,
                "duration": trace.duration,
                "arrivals": trace.arrivals.tolist(),
            }
        )
    )


def load_trace_json(path: str | Path) -> Trace:
    """Read a JSON trace written by :func:`save_trace_json`."""
    data = json.loads(Path(path).read_text())
    return Trace(
        name=str(data["name"]),
        arrivals=np.asarray(data["arrivals"], dtype=float),
        duration=float(data["duration"]),
    )
