"""Goodput under per-metric SLO constraints (genai-perf style).

A :class:`GoodputSpec` declares constraints over the token-level request
metrics — TTFT (time to first token), TPOT (time per output token) and
e2e latency — on a :class:`~repro.experiments.scenario.Scenario` (per
app, via each tenant's scenario, in a ``MultiScenario``).  A request is
*good* iff it completed **and** satisfies every declared constraint; a
token constraint declared against a request that never produced the
needed tokens counts as not met, and drops are never good.

The :class:`~repro.metrics.collector.MetricsCollector` evaluates the
constraints once per terminal request and keeps streaming counters (so
the report works in lean mode and is O(1) to produce); this module holds
the spec, the per-request checks and the :class:`GoodputReport` built
from those counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..simulation.request import RequestStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .collector import MetricsCollector

_SPEC_KEYS = ("ttft", "tpot", "e2e")


@dataclass(frozen=True)
class GoodputSpec:
    """Per-metric latency constraints, all in seconds; ``None`` = unconstrained.

    * ``ttft`` — first token within this budget of ``sent_at``.
    * ``tpot`` — mean inter-token gap ``(last - first) / (tokens - 1)``.
    * ``e2e``  — end-to-end completion latency.
    """

    ttft: float | None = None
    tpot: float | None = None
    e2e: float | None = None

    def __post_init__(self) -> None:
        for name in _SPEC_KEYS:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"goodput constraint {name} must be > 0, got {value}")

    @property
    def declared(self) -> bool:
        """True when at least one constraint is set."""
        return self.ttft is not None or self.tpot is not None or self.e2e is not None

    def to_dict(self) -> dict[str, Any]:
        return {"ttft": self.ttft, "tpot": self.tpot, "e2e": self.e2e}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GoodputSpec":
        unknown = set(data) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(f"unknown GoodputSpec keys: {sorted(unknown)}")
        return cls(**dict(data))


def constraint_checks(spec: GoodputSpec, request) -> tuple[bool, bool, bool]:
    """(ttft_ok, tpot_ok, e2e_ok) for a terminal request or record.

    Undeclared constraints pass vacuously.  Declared token constraints on
    a request without the needed token timestamps (a fixed-duration
    pipeline, or a single-token response for TPOT) fail: declaring a
    token SLO asserts the workload streams tokens.
    """
    ttft_ok = True
    if spec.ttft is not None:
        ttft_ok = (
            request.first_token_at is not None
            and request.first_token_at - request.sent_at <= spec.ttft
        )
    tpot_ok = True
    if spec.tpot is not None:
        tpot_ok = (
            request.tokens_out >= 2
            and request.first_token_at is not None
            and request.last_token_at is not None
            and (request.last_token_at - request.first_token_at)
            / (request.tokens_out - 1)
            <= spec.tpot
        )
    e2e_ok = True
    if spec.e2e is not None:
        e2e_ok = (
            request.finished_at is not None
            and request.finished_at - request.sent_at <= spec.e2e
        )
    return ttft_ok, tpot_ok, e2e_ok


def is_good(spec: GoodputSpec, request) -> bool:
    """Completed and met every declared constraint."""
    if request.status is not RequestStatus.COMPLETED:
        return False
    ttft_ok, tpot_ok, e2e_ok = constraint_checks(spec, request)
    return ttft_ok and tpot_ok and e2e_ok


@dataclass(frozen=True)
class GoodputReport:
    """Goodput-under-constraints numbers for one run (or one app).

    ``*_met`` count completed requests passing that single constraint
    (equal to ``completed`` when the constraint is undeclared);
    ``goodput`` is good requests per second of active duration and
    ``good_fraction`` the good share of all terminal requests.
    """

    spec: GoodputSpec
    total: int
    completed: int
    good: int
    ttft_met: int
    tpot_met: int
    e2e_met: int
    tokens_out: int
    goodput: float
    good_fraction: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "total": self.total,
            "completed": self.completed,
            "good": self.good,
            "ttft_met": self.ttft_met,
            "tpot_met": self.tpot_met,
            "e2e_met": self.e2e_met,
            "tokens_out": self.tokens_out,
            "goodput": self.goodput,
            "good_fraction": self.good_fraction,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"good={self.good}/{self.total} "
            f"({self.good_fraction:.2%}) goodput={self.goodput:.1f}/s"
        )


def goodput_report(
    collector: "MetricsCollector", duration: float | None = None
) -> GoodputReport | None:
    """Build the report from a collector's streaming goodput counters.

    ``None`` when the collector has no declared constraints.  Works for
    lean collectors; like :func:`~repro.metrics.analysis.summarize`, a
    collector whose records were populated by hand falls back to a scan.
    """
    spec = collector.goodput
    if spec is None or not spec.declared:
        return None
    records = collector.records
    if len(records) > collector.count:
        return _report_from_records(spec, records, duration)
    total = collector.count
    if total == 0:
        return GoodputReport(spec, 0, 0, 0, 0, 0, 0, 0, 0.0, 0.0)
    if duration is None:
        duration = max(collector.last_sent - collector.first_sent, 1e-9)
    return GoodputReport(
        spec=spec,
        total=total,
        completed=collector.completed_count,
        good=collector.gp_good,
        ttft_met=collector.gp_ttft_met,
        tpot_met=collector.gp_tpot_met,
        e2e_met=collector.gp_e2e_met,
        tokens_out=collector.gp_tokens_out,
        goodput=collector.gp_good / duration,
        good_fraction=collector.gp_good / total,
    )


def _report_from_records(
    spec: GoodputSpec, records, duration: float | None
) -> GoodputReport:
    total = len(records)
    if total == 0:
        return GoodputReport(spec, 0, 0, 0, 0, 0, 0, 0, 0.0, 0.0)
    completed = good = ttft_met = tpot_met = e2e_met = tokens = 0
    for r in records:
        tokens += r.tokens_out
        if r.status is not RequestStatus.COMPLETED:
            continue
        completed += 1
        ttft_ok, tpot_ok, e2e_ok = constraint_checks(spec, r)
        ttft_met += ttft_ok
        tpot_met += tpot_ok
        e2e_met += e2e_ok
        good += ttft_ok and tpot_ok and e2e_ok
    if duration is None:
        first = min(r.sent_at for r in records)
        last = max(r.sent_at for r in records)
        duration = max(last - first, 1e-9)
    return GoodputReport(
        spec=spec,
        total=total,
        completed=completed,
        good=good,
        ttft_met=ttft_met,
        tpot_met=tpot_met,
        e2e_met=e2e_met,
        tokens_out=tokens,
        goodput=good / duration,
        good_fraction=good / total,
    )
