"""Metrics: per-request records and the paper's §5.1 measures."""

from .analysis import (
    Summary,
    consumed_budget_per_module,
    drop_rate_at_min_goodput,
    drop_rate_series,
    drops_per_module,
    goodput_series,
    latency_component_cdf,
    latency_percentiles,
    max_drop_rate,
    min_normalized_goodput,
    normalized_goodput_series,
    slo_attainment_curve,
    summarize,
)
from .collector import MetricsCollector, RequestRecord, VisitRecord
from .report import comparison_table, format_table, pct, per_module_drop_table

__all__ = [
    "MetricsCollector",
    "RequestRecord",
    "Summary",
    "VisitRecord",
    "consumed_budget_per_module",
    "drop_rate_at_min_goodput",
    "drop_rate_series",
    "drops_per_module",
    "goodput_series",
    "latency_component_cdf",
    "latency_percentiles",
    "max_drop_rate",
    "min_normalized_goodput",
    "normalized_goodput_series",
    "slo_attainment_curve",
    "summarize",
    "comparison_table",
    "format_table",
    "pct",
    "per_module_drop_table",
]
