"""Per-request outcome records and the run-level collector.

The collector is the single source of truth for every metric the paper
reports: goodput, drop rate, invalid rate (wasted GPU time), per-module
drop distribution, transient rates and latency decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation.request import DropReason, Request, RequestStatus


@dataclass(frozen=True)
class VisitRecord:
    """Latency decomposition of one executed module visit."""

    module_id: str
    queueing_delay: float
    batch_wait: float
    execution: float
    gpu_time: float
    batch_size: int


@dataclass(frozen=True)
class RequestRecord:
    """Immutable outcome of one request (terminal state)."""

    rid: int
    sent_at: float
    finished_at: float
    status: RequestStatus
    met_slo: bool
    slo: float
    gpu_time: float
    dropped_at_module: str | None
    drop_reason: DropReason | None
    visits: tuple[VisitRecord, ...] = field(default_factory=tuple)

    @property
    def latency(self) -> float:
        return self.finished_at - self.sent_at

    @property
    def counts_as_dropped(self) -> bool:
        """Paper §5.1: completed-but-SLO-violating requests count as dropped."""
        return self.status is RequestStatus.DROPPED or not self.met_slo

    @property
    def wasted_gpu_time(self) -> float:
        """GPU time that produced no SLO-compliant result."""
        return self.gpu_time if self.counts_as_dropped else 0.0


def _visit_records(request: Request) -> tuple[VisitRecord, ...]:
    out = []
    for v in request.visits.values():
        if v.t_exec_end is None:
            continue  # never executed at this module (queued/forming when dropped)
        out.append(
            VisitRecord(
                module_id=v.module_id,
                queueing_delay=v.queueing_delay,
                batch_wait=v.batch_wait,
                execution=v.execution,
                gpu_time=v.gpu_time,
                batch_size=v.batch_size,
            )
        )
    return tuple(out)


class MetricsCollector:
    """Accumulates request outcomes during a simulation run."""

    def __init__(self) -> None:
        self.records: list[RequestRecord] = []
        self.submitted = 0

    def record_submitted(self) -> None:
        self.submitted += 1

    def record_request(self, request: Request) -> None:
        """Snapshot a request that has reached a terminal state."""
        if request.status is RequestStatus.IN_FLIGHT:
            raise ValueError(f"request {request.rid} is still in flight")
        assert request.finished_at is not None
        self.records.append(
            RequestRecord(
                rid=request.rid,
                sent_at=request.sent_at,
                finished_at=request.finished_at,
                status=request.status,
                met_slo=request.met_slo,
                slo=request.slo,
                gpu_time=request.gpu_time,
                dropped_at_module=request.dropped_at_module,
                drop_reason=request.drop_reason,
                visits=_visit_records(request),
            )
        )

    # -- convenience views ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.status is RequestStatus.COMPLETED]

    @property
    def good(self) -> list[RequestRecord]:
        """Requests that completed within their SLO."""
        return [r for r in self.records if r.met_slo]

    @property
    def dropped(self) -> list[RequestRecord]:
        """Explicit drops plus SLO-violating completions (paper §5.1)."""
        return [r for r in self.records if r.counts_as_dropped]
