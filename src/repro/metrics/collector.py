"""Per-request outcome records and the run-level collector.

The collector is the single source of truth for every metric the paper
reports: goodput, drop rate, invalid rate (wasted GPU time), per-module
drop distribution, transient rates and latency decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation.request import DropReason, Request, RequestStatus
from .goodput import GoodputSpec, constraint_checks


@dataclass(frozen=True, slots=True)
class VisitRecord:
    """Latency decomposition of one executed module visit."""

    module_id: str
    queueing_delay: float
    batch_wait: float
    execution: float
    gpu_time: float
    batch_size: int


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Immutable outcome of one request (terminal state)."""

    rid: int
    sent_at: float
    finished_at: float
    status: RequestStatus
    met_slo: bool
    slo: float
    gpu_time: float
    dropped_at_module: str | None
    drop_reason: DropReason | None
    visits: tuple[VisitRecord, ...] = field(default_factory=tuple)
    # Token-level (LLM) outcomes; defaults keep fixed-duration records lean.
    first_token_at: float | None = None
    last_token_at: float | None = None
    tokens_out: int = 0

    @property
    def latency(self) -> float:
        return self.finished_at - self.sent_at

    @property
    def counts_as_dropped(self) -> bool:
        """Paper §5.1: completed-but-SLO-violating requests count as dropped."""
        return self.status is RequestStatus.DROPPED or not self.met_slo

    @property
    def wasted_gpu_time(self) -> float:
        """GPU time that produced no SLO-compliant result."""
        return self.gpu_time if self.counts_as_dropped else 0.0


def _visit_records(request: Request) -> tuple[VisitRecord, ...]:
    out = []
    for v in request.visits.values():
        if v.t_exec_end is None:
            continue  # never executed at this module (queued/forming when dropped)
        out.append(
            VisitRecord(
                module_id=v.module_id,
                queueing_delay=v.queueing_delay,
                batch_wait=v.batch_wait,
                execution=v.execution,
                gpu_time=v.gpu_time,
                batch_size=v.batch_size,
            )
        )
    return tuple(out)


class MetricsCollector:
    """Accumulates request outcomes during a simulation run.

    Alongside the per-request :class:`RequestRecord` list, the collector
    maintains *streaming* counters (counts, GPU-time totals, send-time
    span) updated once per terminal request, so run-level summaries are
    O(1) instead of a full pass over the records.

    ``lean=True`` keeps only the streaming counters: no ``RequestRecord``
    or :class:`VisitRecord` objects are materialised at all.  Sweep cells
    and benchmarks that only consume a
    :class:`~repro.metrics.analysis.Summary` use this to skip the
    dominant per-request allocation cost; per-window series, per-module
    drop shares and latency CDFs need full records and are unavailable.
    """

    def __init__(
        self, lean: bool = False, goodput: GoodputSpec | None = None
    ) -> None:
        self.records: list[RequestRecord] = []
        self.lean = lean
        self.submitted = 0
        # Streaming counters (single source of truth for summaries).
        self.count = 0
        self.completed_count = 0
        self.good_count = 0
        self.dropped_count = 0  # includes SLO-violating completions
        self.gpu_time_total = 0.0
        self.wasted_gpu_total = 0.0
        self.first_sent = float("inf")
        self.last_sent = float("-inf")
        # Goodput-under-constraints counters, evaluated per terminal
        # request against the declared spec (None = no constraints; the
        # counters stay zero and goodput_report() returns None).
        self.goodput = goodput
        self.gp_good = 0
        self.gp_ttft_met = 0
        self.gp_tpot_met = 0
        self.gp_e2e_met = 0
        self.gp_tokens_out = 0
        # Resilience counters (streamed, lean-safe): incremented by the
        # ResilienceManager as it acts, not per terminal request.  The
        # retry/hedge totals are the numerators of the dispatch
        # amplification factor.
        self.res_retries = 0
        self.res_hedges = 0
        self.res_timeouts = 0
        self.res_fallbacks = 0

    def record_submitted(self) -> None:
        self.submitted += 1

    def record_request(self, request: Request) -> None:
        """Snapshot a request that has reached a terminal state."""
        status = request.status
        if status is RequestStatus.IN_FLIGHT:
            raise ValueError(f"request {request.rid} is still in flight")
        assert request.finished_at is not None
        met_slo = request.met_slo
        gpu_time = request.gpu_time
        counts_as_dropped = status is RequestStatus.DROPPED or not met_slo
        self.count += 1
        if status is RequestStatus.COMPLETED:
            self.completed_count += 1
        if met_slo:
            self.good_count += 1
        if counts_as_dropped:
            self.dropped_count += 1
            self.wasted_gpu_total += gpu_time
        self.gpu_time_total += gpu_time
        sent_at = request.sent_at
        if sent_at < self.first_sent:
            self.first_sent = sent_at
        if sent_at > self.last_sent:
            self.last_sent = sent_at
        gp = self.goodput
        if gp is not None and gp.declared:
            self.gp_tokens_out += request.tokens_out
            if status is RequestStatus.COMPLETED:
                ttft_ok, tpot_ok, e2e_ok = constraint_checks(gp, request)
                self.gp_ttft_met += ttft_ok
                self.gp_tpot_met += tpot_ok
                self.gp_e2e_met += e2e_ok
                self.gp_good += ttft_ok and tpot_ok and e2e_ok
        if self.lean:
            return
        self.records.append(
            RequestRecord(
                rid=request.rid,
                sent_at=sent_at,
                finished_at=request.finished_at,
                status=status,
                met_slo=met_slo,
                slo=request.slo,
                gpu_time=gpu_time,
                dropped_at_module=request.dropped_at_module,
                drop_reason=request.drop_reason,
                visits=_visit_records(request),
                first_token_at=request.first_token_at,
                last_token_at=request.last_token_at,
                tokens_out=request.tokens_out,
            )
        )

    # -- convenience views ---------------------------------------------------

    def __len__(self) -> int:
        return self.count if self.lean else len(self.records)

    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.status is RequestStatus.COMPLETED]

    @property
    def good(self) -> list[RequestRecord]:
        """Requests that completed within their SLO."""
        return [r for r in self.records if r.met_slo]

    @property
    def dropped(self) -> list[RequestRecord]:
        """Explicit drops plus SLO-violating completions (paper §5.1)."""
        return [r for r in self.records if r.counts_as_dropped]
