"""Exporter layer: tabular results as console text, CSV and JSON artifacts.

The genai-perf ``console_exporter`` shape applied to this harness: a result
is a list of :class:`TableData` (plain columns + scalar rows) wrapped in an
:class:`Artifact`, and every output format renders from that one source.
The renderers are **byte-stable**: output is a pure function of the table
values — no timestamps, no cache/timing bookkeeping, floats serialized via
their shortest round-trip ``repr`` — so the same study run serially, in a
process pool or from cache exports bit-identical artifacts, and committed
goldens can gate them in CI.

Consumed by :mod:`repro.studies` (interference/capacity artifacts) and by
``repro scenario run --format csv|json`` (the structured form of the
existing summary tables).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from .analysis import drops_per_module
from .report import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.runner import ExperimentResult, MultiResult

__all__ = [
    "Artifact",
    "TableData",
    "cell_text",
    "fault_table",
    "multi_result_tables",
    "render_console",
    "render_csv",
    "render_json",
    "scenario_result_tables",
]

_SCALARS = (str, int, float, bool, type(None))


def cell_text(value: Any) -> str:
    """Canonical text form of one cell (CSV cells, unformatted console).

    Floats use ``repr`` — the shortest round-trip spelling, identical
    across processes and platforms — so the text form is as byte-stable
    as the value itself.  ``None`` renders empty, bools lowercase.
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class TableData:
    """One named table of scalar cells — the unit every exporter renders.

    ``formats`` optionally carries one :func:`format` spec per column
    (e.g. ``".2f"``, ``".2%"``) applied by the *console* renderer only;
    CSV/JSON always export the raw full-precision values.
    """

    name: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...] = ()
    formats: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "columns", tuple(str(c) for c in self.columns)
        )
        if not self.columns:
            raise ValueError(f"table {self.name!r} needs at least one column")
        rows = tuple(tuple(r) for r in self.rows)
        for row in rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.name!r}: row has {len(row)} cells, "
                    f"expected {len(self.columns)}"
                )
            for value in row:
                if not isinstance(value, _SCALARS):
                    raise ValueError(
                        f"table {self.name!r}: cells must be scalars, got "
                        f"{type(value).__name__}"
                    )
        object.__setattr__(self, "rows", rows)
        formats = tuple(self.formats)
        if formats and len(formats) != len(self.columns):
            raise ValueError(
                f"table {self.name!r}: formats must cover every column"
            )
        object.__setattr__(self, "formats", formats)

    def _display_cell(self, value: Any, spec: "str | None") -> str:
        if spec is None or value is None or isinstance(value, str):
            return cell_text(value)
        return format(value, spec)

    def display_rows(self) -> list[list[str]]:
        """Rows as console strings, per-column formats applied."""
        formats = self.formats or (None,) * len(self.columns)
        return [
            [self._display_cell(v, f) for v, f in zip(row, formats)]
            for row in self.rows
        ]


def _csv_cell(value: Any) -> str:
    text = cell_text(value)
    if any(c in text for c in (",", '"', "\n")):
        return '"' + text.replace('"', '""') + '"'
    return text


def render_console(
    tables: Sequence[TableData], markdown: bool = False
) -> str:
    """All tables as aligned text (or markdown), one titled block each."""
    blocks = []
    for table in tables:
        header = f"{table.name}:"
        body = format_table(table.columns, table.display_rows(),
                           markdown=markdown)
        blocks.append(f"{header}\n{body}")
    return "\n\n".join(blocks)


def render_csv(tables: Sequence[TableData]) -> str:
    """All tables as CSV blocks, each preceded by a ``# name`` comment."""
    blocks = []
    for table in tables:
        lines = [f"# {table.name}",
                 ",".join(_csv_cell(c) for c in table.columns)]
        lines.extend(
            ",".join(_csv_cell(v) for v in row) for row in table.rows
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def render_json(
    tables: Sequence[TableData], meta: "dict | None" = None
) -> str:
    """The canonical JSON artifact: sorted keys, indent 2, one newline.

    The same serialization discipline as sweep ``--save-summaries`` files,
    so artifact files diff bitwise across worker counts and against
    committed goldens.
    """
    payload = {
        "meta": dict(meta or {}),
        "tables": {
            t.name: {
                "columns": list(t.columns),
                "rows": [list(row) for row in t.rows],
            }
            for t in tables
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class Artifact:
    """A named bundle of tables plus metadata, exportable in every format."""

    name: str
    tables: tuple[TableData, ...]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tables", tuple(self.tables))
        if not self.name:
            raise ValueError("an artifact needs a name")

    def console_text(self, markdown: bool = False) -> str:
        return render_console(self.tables, markdown=markdown)

    def csv_text(self) -> str:
        return render_csv(self.tables)

    def json_text(self) -> str:
        return render_json(self.tables, self.meta)

    def write(self, directory: "str | Path") -> list[Path]:
        """Write ``<name>.json`` and ``<name>.csv`` under ``directory``."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths = []
        for suffix, text in ((".json", self.json_text()),
                             (".csv", self.csv_text())):
            path = out / f"{self.name}{suffix}"
            path.write_text(text)
            paths.append(path)
        return paths


_SUMMARY_COLUMNS = ("goodput", "drop_rate", "invalid_rate", "good", "total")
_SUMMARY_FORMATS = (".2f", ".2%", ".2%", None, None)


def _summary_cells(summary) -> tuple:
    return (summary.goodput, summary.drop_rate, summary.invalid_rate,
            summary.good, summary.total)


def _goodput_table(reports: dict) -> TableData:
    rows = []
    for label, r in reports.items():
        rows.append((label, r.good, r.completed, r.total, r.good_fraction,
                     r.goodput, r.tokens_out, r.ttft_met, r.tpot_met,
                     r.e2e_met))
    return TableData(
        name="goodput",
        columns=("name", "good", "completed", "total", "good_fraction",
                 "goodput", "tokens_out", "ttft_met", "tpot_met", "e2e_met"),
        rows=tuple(rows),
        formats=(None, None, None, None, ".2%", ".2f", None, None, None,
                 None),
    )


def fault_table(records) -> TableData:
    """Structured fault timeline as one exportable table.

    ``records`` are the injector's
    :class:`~repro.simulation.failures.FaultRecord` list — the typed form
    behind the legacy rendered ``failure_log`` strings.
    """
    return TableData(
        name="faults",
        columns=("time", "kind", "target", "count", "factor"),
        rows=tuple(
            (r.time, r.kind, r.target, r.count, r.factor) for r in records
        ),
        formats=(".2f", None, None, None, None),
    )


def scenario_result_tables(result: "ExperimentResult") -> list[TableData]:
    """The structured form of ``repro scenario run``'s single-app report."""
    tables = [
        TableData(
            name="summary",
            columns=("policy", *_SUMMARY_COLUMNS),
            rows=((result.policy_name, *_summary_cells(result.summary)),),
            formats=(None, *_SUMMARY_FORMATS),
        )
    ]
    module_ids = list(result.module_ids)
    shares = drops_per_module(result.collector, module_ids)
    tables.append(TableData(
        name="module_drops",
        columns=("policy", *module_ids),
        rows=((result.policy_name, *(shares[m] for m in module_ids)),),
        formats=(None, *(".2%",) * len(module_ids)),
    ))
    if result.goodput is not None:
        tables.append(_goodput_table({result.policy_name: result.goodput}))
    if result.fault_records:
        tables.append(fault_table(result.fault_records))
    return tables


def multi_result_tables(result: "MultiResult") -> list[TableData]:
    """The structured form of the shared-cluster (multi-tenant) report."""
    tables = [
        TableData(
            name="per_app",
            columns=("app", *_SUMMARY_COLUMNS),
            rows=tuple(
                (label, *_summary_cells(s))
                for label, s in result.summaries.items()
            ),
            formats=(None, *_SUMMARY_FORMATS),
        )
    ]
    pool_ids = list(result.pool_ids)
    drop_rows = []
    for label, collector in result.collectors.items():
        shares = drops_per_module(collector, pool_ids)
        drop_rows.append((label, *(shares[p] for p in pool_ids)))
    tables.append(TableData(
        name="per_app_drops",
        columns=("app", *pool_ids),
        rows=tuple(drop_rows),
        formats=(None, *(".2%",) * len(pool_ids)),
    ))
    reports = {k: v for k, v in result.goodputs.items() if v is not None}
    if reports:
        tables.append(_goodput_table(reports))
    tables.append(TableData(
        name="aggregate",
        columns=_SUMMARY_COLUMNS,
        rows=(_summary_cells(result.aggregate),),
        formats=_SUMMARY_FORMATS,
    ))
    if result.fault_records:
        tables.append(fault_table(result.fault_records))
    return tables
