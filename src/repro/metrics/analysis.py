"""Run-level metric computations (§5.1 definitions).

* **Goodput** — requests completed within the latency objective per unit
  time.  Reported per window, normalized by the input rate, and as the
  minimum over all windows of a given size (Figure 2a).
* **Drop rate** — dropped requests / all requests, where completed requests
  that violate the SLO also count as dropped.
* **Invalid rate** — GPU time consumed by dropped requests / total GPU
  time (wasted computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..simulation.request import RequestStatus
from .collector import MetricsCollector, RequestRecord


@dataclass(frozen=True)
class Summary:
    """Headline numbers for one run."""

    total: int
    completed: int
    good: int
    dropped: int  # includes SLO-violating completions
    drop_rate: float
    invalid_rate: float
    goodput: float  # good requests / active duration
    mean_goodput_normalized: float  # good / total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"total={self.total} good={self.good} "
            f"drop_rate={self.drop_rate:.2%} invalid_rate={self.invalid_rate:.2%} "
            f"goodput={self.goodput:.1f}/s"
        )


def summarize(collector: MetricsCollector, duration: float | None = None) -> Summary:
    """Aggregate a run's streaming counters into a :class:`Summary`.

    O(1): the collector maintains every summary input incrementally as
    requests reach terminal states, so summarising no longer re-scans the
    record list (and works for ``lean`` collectors that keep no records).
    A collector whose ``records`` were populated by hand — bypassing
    :meth:`~MetricsCollector.record_request` — falls back to a full scan.
    """
    records = collector.records
    if len(records) > collector.count:
        return _summarize_records(records, duration)
    total = collector.count
    if total == 0:
        return Summary(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    good = collector.good_count
    total_gpu = collector.gpu_time_total
    if duration is None:
        duration = max(collector.last_sent - collector.first_sent, 1e-9)
    return Summary(
        total=total,
        completed=collector.completed_count,
        good=good,
        dropped=collector.dropped_count,
        drop_rate=collector.dropped_count / total,
        invalid_rate=(
            collector.wasted_gpu_total / total_gpu if total_gpu > 0 else 0.0
        ),
        goodput=good / duration,
        mean_goodput_normalized=good / total,
    )


def _summarize_records(
    records: Sequence[RequestRecord], duration: float | None
) -> Summary:
    """Record-scan summary for collectors built without streaming counters."""
    total = len(records)
    if total == 0:
        return Summary(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    good = sum(1 for r in records if r.met_slo)
    completed = sum(1 for r in records if r.status is RequestStatus.COMPLETED)
    dropped = sum(1 for r in records if r.counts_as_dropped)
    total_gpu = sum(r.gpu_time for r in records)
    wasted_gpu = sum(r.wasted_gpu_time for r in records)
    if duration is None:
        first = min(r.sent_at for r in records)
        last = max(r.sent_at for r in records)
        duration = max(last - first, 1e-9)
    return Summary(
        total=total,
        completed=completed,
        good=good,
        dropped=dropped,
        drop_rate=dropped / total,
        invalid_rate=wasted_gpu / total_gpu if total_gpu > 0 else 0.0,
        goodput=good / duration,
        mean_goodput_normalized=good / total,
    )


def merge_collectors(
    collectors: "Mapping[str, MetricsCollector] | Sequence[MetricsCollector]",
) -> MetricsCollector:
    """One collector holding every input collector's records.

    The aggregate view of a shared (multi-tenant) cluster run: all the
    per-window and per-module analyses in this module work unchanged on
    the merged records.  Records are concatenated in input order; the
    originals are not modified.
    """
    if isinstance(collectors, Mapping):
        parts = list(collectors.values())
    else:
        parts = list(collectors)
    merged = MetricsCollector()
    # The aggregate only carries a goodput spec when every part declares
    # the same one; the counters are additive either way (each part's
    # requests were judged against that part's own constraints).
    specs = {c.goodput for c in parts if c.goodput is not None}
    if len(specs) == 1:
        merged.goodput = specs.pop()
    for collector in parts:
        merged.records.extend(collector.records)
        merged.submitted += collector.submitted
        merged.res_retries += collector.res_retries
        merged.res_hedges += collector.res_hedges
        merged.res_timeouts += collector.res_timeouts
        merged.res_fallbacks += collector.res_fallbacks
        merged.gp_good += collector.gp_good
        merged.gp_ttft_met += collector.gp_ttft_met
        merged.gp_tpot_met += collector.gp_tpot_met
        merged.gp_e2e_met += collector.gp_e2e_met
        merged.gp_tokens_out += collector.gp_tokens_out
        if not collector.lean and len(collector.records) == collector.count:
            # Fold record by record: the aggregate's float totals then
            # accumulate in exactly the concatenation order a full scan
            # would use, keeping merged summaries bit-identical to one.
            for r in collector.records:
                _fold_record(merged, r)
        else:
            # Lean collectors have no records; fold their subtotals.
            merged.count += collector.count
            merged.completed_count += collector.completed_count
            merged.good_count += collector.good_count
            merged.dropped_count += collector.dropped_count
            merged.gpu_time_total += collector.gpu_time_total
            merged.wasted_gpu_total += collector.wasted_gpu_total
            merged.first_sent = min(merged.first_sent, collector.first_sent)
            merged.last_sent = max(merged.last_sent, collector.last_sent)
    return merged


def _fold_record(collector: MetricsCollector, r: RequestRecord) -> None:
    """Update a collector's streaming counters with one existing record."""
    collector.count += 1
    if r.status is RequestStatus.COMPLETED:
        collector.completed_count += 1
    if r.met_slo:
        collector.good_count += 1
    if r.counts_as_dropped:
        collector.dropped_count += 1
        collector.wasted_gpu_total += r.gpu_time
    collector.gpu_time_total += r.gpu_time
    if r.sent_at < collector.first_sent:
        collector.first_sent = r.sent_at
    if r.sent_at > collector.last_sent:
        collector.last_sent = r.sent_at


def per_app_summaries(
    collectors: Mapping[str, MetricsCollector],
    durations: "Mapping[str, float] | float | None" = None,
) -> dict[str, Summary]:
    """Per-application :class:`Summary` for a shared-cluster run.

    ``durations`` normalises each app's goodput: a mapping gives each app
    its own trace duration, a scalar applies to all, ``None`` falls back
    to each collector's observed send-time span.
    """
    out: dict[str, Summary] = {}
    for name, collector in collectors.items():
        if isinstance(durations, Mapping):
            duration = durations.get(name)
        else:
            duration = durations
        out[name] = summarize(collector, duration=duration)
    return out


def _window_edges(records: list[RequestRecord], window: float) -> np.ndarray:
    t_end = max(r.sent_at for r in records)
    return np.arange(0.0, t_end + window, window)


def goodput_series(
    collector: MetricsCollector, window: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(window starts, good counts, arrival counts) per window of send time.

    Windows are keyed by *send* time so goodput lines up against the input
    rate, matching the paper's normalized-goodput plots (Figure 10).
    """
    if window <= 0:
        raise ValueError("window must be > 0")
    records = collector.records
    if not records:
        return np.array([]), np.array([]), np.array([])
    edges = _window_edges(records, window)
    sent = np.array([r.sent_at for r in records])
    good = np.array([r.met_slo for r in records], dtype=bool)
    arrivals, _ = np.histogram(sent, bins=edges)
    goods, _ = np.histogram(sent[good], bins=edges)
    return edges[:-1], goods, arrivals


def normalized_goodput_series(
    collector: MetricsCollector, window: float
) -> tuple[np.ndarray, np.ndarray]:
    """(window starts, goodput / input rate) per window; NaN where idle."""
    starts, goods, arrivals = goodput_series(collector, window)
    with np.errstate(divide="ignore", invalid="ignore"):
        norm = np.where(arrivals > 0, goods / np.maximum(arrivals, 1), np.nan)
    return starts, norm


def min_normalized_goodput(collector: MetricsCollector, window: float) -> float:
    """Minimum over windows of normalized goodput (Figure 2a's metric).

    Windows with fewer than 1% of the mean arrivals are ignored to avoid
    start/end artifacts.
    """
    starts, goods, arrivals = goodput_series(collector, window)
    if len(starts) == 0:
        return 0.0
    floor = max(1.0, 0.01 * arrivals.mean())
    mask = arrivals >= floor
    if not mask.any():
        return 0.0
    return float((goods[mask] / arrivals[mask]).min())


def time_to_recover(
    collector: MetricsCollector,
    after: float,
    target: float,
    window: float,
) -> float | None:
    """Delay from ``after`` until windowed goodput first recovers.

    Returns the gap (in seconds, >= 0) between ``after`` — typically a
    fault injection time — and the start of the first send-time window
    *starting at or after* ``after`` whose normalized goodput reaches
    ``target``.  The window containing ``after`` is excluded: its sends
    straddle the fault, so its good fraction dilutes the outage with
    pre-fault traffic.  Idle windows (no arrivals) cannot witness
    recovery.  ``None`` when goodput never recovers within the run.
    """
    starts, norm = normalized_goodput_series(collector, window)
    for start, value in zip(starts, norm):
        if start < after:
            continue
        if not np.isnan(value) and value >= target:
            return float(start - after)
    return None


def dispatch_amplification(collector: MetricsCollector) -> float:
    """(terminal + retries + hedges) / terminal: extra-dispatch overhead.

    1.0 means every request was dispatched exactly once per hop attempt;
    resilience policies (retries, hedges) push it above 1.  Streaming
    counters only, so this is lean-safe.
    """
    total = collector.count
    if total == 0:
        return 1.0
    return (total + collector.res_retries + collector.res_hedges) / total


def drop_rate_series(
    collector: MetricsCollector, window: float
) -> tuple[np.ndarray, np.ndarray]:
    """(window starts, transient drop rate) per send-time window (Fig. 2d)."""
    if window <= 0:
        raise ValueError("window must be > 0")
    records = collector.records
    if not records:
        return np.array([]), np.array([])
    edges = _window_edges(records, window)
    sent = np.array([r.sent_at for r in records])
    dropped = np.array([r.counts_as_dropped for r in records], dtype=bool)
    arrivals, _ = np.histogram(sent, bins=edges)
    drops, _ = np.histogram(sent[dropped], bins=edges)
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.where(arrivals > 0, drops / np.maximum(arrivals, 1), 0.0)
    return edges[:-1], rate


def max_drop_rate(collector: MetricsCollector, window: float) -> float:
    """Maximum windowed drop rate over the run (Figure 9's metric)."""
    starts, rates = drop_rate_series(collector, window)
    if len(starts) == 0:
        return 0.0
    _, _, arrivals = goodput_series(collector, window)
    floor = max(1.0, 0.01 * arrivals.mean())
    mask = arrivals >= floor
    if not mask.any():
        return 0.0
    return float(rates[mask].max())


def drop_rate_at_min_goodput(collector: MetricsCollector, window: float) -> float:
    """Drop rate of the window where normalized goodput is minimal (Fig 2b)."""
    starts, goods, arrivals = goodput_series(collector, window)
    if len(starts) == 0:
        return 0.0
    floor = max(1.0, 0.01 * arrivals.mean())
    mask = arrivals >= floor
    if not mask.any():
        return 0.0
    norm = goods[mask] / arrivals[mask]
    _, rates = drop_rate_series(collector, window)
    return float(rates[mask][int(np.argmin(norm))])


def drops_per_module(
    collector: MetricsCollector, module_ids: list[str]
) -> dict[str, float]:
    """Share of *explicit* drops attributed to each module (Figures 2c, 11b).

    SLO-violating completions have no drop module and are excluded, matching
    the paper's per-module drop accounting.
    """
    counts = {mid: 0 for mid in module_ids}
    total = 0
    for r in collector.records:
        if r.dropped_at_module is None:
            continue
        total += 1
        if r.dropped_at_module in counts:
            counts[r.dropped_at_module] += 1
    if total == 0:
        return {mid: 0.0 for mid in module_ids}
    return {mid: c / total for mid, c in counts.items()}


def latency_component_cdf(
    collector: MetricsCollector, component: str
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of a per-request end-to-end latency component (Figure 12b).

    ``component`` is one of ``queueing`` (sum of Q_i), ``wait`` (sum of
    W_i) or ``exec`` (sum of D_i), summed over every executed module visit.
    """
    pick = {
        "queueing": lambda v: v.queueing_delay,
        "wait": lambda v: v.batch_wait,
        "exec": lambda v: v.execution,
    }
    try:
        fn = pick[component]
    except KeyError:
        raise ValueError(
            f"unknown component {component!r}; expected one of {sorted(pick)}"
        ) from None
    totals = [
        sum(fn(v) for v in r.visits)
        for r in collector.records
        if r.visits
    ]
    if not totals:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(totals))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps


def consumed_budget_per_module(
    collector: MetricsCollector, module_ids: list[str]
) -> dict[str, float]:
    """Mean latency budget consumed at each module by SLO-compliant
    requests (Figure 12a): Q_k + W_k + D_k averaged over good requests."""
    sums = {mid: 0.0 for mid in module_ids}
    counts = {mid: 0 for mid in module_ids}
    for r in collector.records:
        if not r.met_slo:
            continue
        for v in r.visits:
            if v.module_id in sums:
                sums[v.module_id] += v.queueing_delay + v.batch_wait + v.execution
                counts[v.module_id] += 1
    return {
        mid: (sums[mid] / counts[mid] if counts[mid] else 0.0)
        for mid in module_ids
    }


def latency_percentiles(
    collector: MetricsCollector, qs: Sequence[float] = (0.5, 0.9, 0.95, 0.99)
) -> dict[float, float]:
    """End-to-end latency percentiles over *completed* requests.

    Dropped requests have no meaningful end-to-end latency and are
    excluded; an empty result means nothing completed.
    """
    lats = [
        r.latency
        for r in collector.records
        if r.status is RequestStatus.COMPLETED
    ]
    if not lats:
        return {}
    arr = np.asarray(lats)
    return {float(q): float(np.quantile(arr, q)) for q in qs}


def slo_attainment_curve(
    collector: MetricsCollector, slos: Sequence[float]
) -> dict[float, float]:
    """Fraction of all requests that would have met each hypothetical SLO.

    Useful for picking SLOs (paper's Figure 14b regime): dropped requests
    count as misses at every SLO.
    """
    total = len(collector.records)
    if total == 0:
        return {float(s): 0.0 for s in slos}
    lats = [
        r.latency
        for r in collector.records
        if r.status is RequestStatus.COMPLETED
    ]
    arr = np.asarray(sorted(lats))
    out = {}
    for s in slos:
        met = int(np.searchsorted(arr, s, side="right"))
        out[float(s)] = met / total
    return out
