"""Plain-text and markdown report formatting for experiment results."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from .analysis import Summary, drops_per_module

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.runner import ExperimentResult, MultiResult
    from .goodput import GoodputReport


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    markdown: bool = False,
) -> str:
    """Render a column-aligned text table (or a markdown table)."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in str_rows:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
    else:
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in str_rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(x: float) -> str:
    """Format a ratio as a percentage cell."""
    return f"{x * 100:.2f}%"


def comparison_table(
    results: "dict[str, ExperimentResult]", markdown: bool = False
) -> str:
    """Goodput / drop-rate / invalid-rate table across policies."""
    headers = ["policy", "goodput (req/s)", "drop rate", "invalid rate",
               "good", "total"]
    rows = []
    for label, res in results.items():
        s = res.summary
        rows.append([
            label,
            f"{s.goodput:.1f}",
            pct(s.drop_rate),
            pct(s.invalid_rate),
            str(s.good),
            str(s.total),
        ])
    return format_table(headers, rows, markdown=markdown)


def policy_descriptions(results: "dict[str, ExperimentResult]") -> str:
    """One describe line per policy, reflecting its full parameterisation.

    Result tables key on the policy label; these lines spell out the knob
    values behind each label (``PARD(lam=0.3): PARD(lam=0.3) [lam=0.3,
    sub=full, ...]``) so two parameterized variants of one system are
    distinguishable in every report, not just by name.
    """
    lines = []
    for label, res in results.items():
        desc = res.cluster.policy.describe()
        lines.append(desc if desc.startswith(label) else f"{label}: {desc}")
    return "\n".join(lines)


def per_app_table(
    summaries: "dict[str, Summary]", markdown: bool = False
) -> str:
    """Per-application breakdown of a shared-cluster run."""
    headers = ["app", "goodput (req/s)", "drop rate", "invalid rate",
               "good", "total"]
    rows = []
    for label, s in summaries.items():
        rows.append([
            label,
            f"{s.goodput:.1f}",
            pct(s.drop_rate),
            pct(s.invalid_rate),
            str(s.good),
            str(s.total),
        ])
    return format_table(headers, rows, markdown=markdown)


def goodput_table(
    reports: "Mapping[str, GoodputReport]", markdown: bool = False
) -> str:
    """Goodput-under-constraints breakdown (one row per policy or app).

    Constraint columns appear only for metrics at least one row declares,
    showing ``met/completed`` against the declared bound (``-`` for rows
    without that constraint).
    """
    reports = {k: v for k, v in reports.items() if v is not None}
    if not reports:
        raise ValueError("no goodput reports to tabulate")
    show = {
        metric: any(getattr(r.spec, metric) is not None for r in reports.values())
        for metric in ("ttft", "tpot", "e2e")
    }
    headers = ["", "good", "good %", "goodput (req/s)", "tokens"]
    for metric in ("ttft", "tpot", "e2e"):
        if show[metric]:
            headers.append(f"{metric} met")
    rows = []
    for label, r in reports.items():
        row = [
            label,
            f"{r.good}/{r.total}",
            pct(r.good_fraction),
            f"{r.goodput:.1f}",
            str(r.tokens_out),
        ]
        for metric in ("ttft", "tpot", "e2e"):
            if not show[metric]:
                continue
            bound = getattr(r.spec, metric)
            if bound is None:
                row.append("-")
            else:
                met = getattr(r, f"{metric}_met")
                row.append(f"{met}/{r.completed} @{bound:g}s")
        rows.append(row)
    return format_table(headers, rows, markdown=markdown)


def per_app_drop_table(
    result: "MultiResult", markdown: bool = False
) -> str:
    """Share of each app's explicit drops at each shared pool."""
    pool_ids = result.pool_ids
    headers = ["app", *pool_ids]
    rows = []
    for label, collector in result.collectors.items():
        shares = drops_per_module(collector, pool_ids)
        rows.append([label, *(pct(shares[p]) for p in pool_ids)])
    return format_table(headers, rows, markdown=markdown)


def per_module_drop_table(
    results: "dict[str, ExperimentResult]", markdown: bool = False
) -> str:
    """Share of explicit drops at each module, per policy."""
    any_result = next(iter(results.values()))
    module_ids = any_result.module_ids
    headers = ["policy", *module_ids]
    rows = []
    for label, res in results.items():
        shares = drops_per_module(res.collector, module_ids)
        rows.append([label, *(pct(shares[m]) for m in module_ids)])
    return format_table(headers, rows, markdown=markdown)
