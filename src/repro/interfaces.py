"""Drop-policy and queue-discipline interfaces.

Every serving system reproduced here (PARD, Nexus, Clipper++, the naive
baseline and all Table-1 ablations) plugs into the same three seams of the
simulator:

* :meth:`DropPolicy.make_queue` — the per-worker queue discipline (FIFO for
  reactive systems, a deadline-keyed DEPQ for PARD);
* :meth:`DropPolicy.should_drop` — consulted by a worker at time ``t_b``,
  right before a request joins a forming batch (Figure 5 of the paper);
* :meth:`DropPolicy.on_admit` — consulted when a request enters a module
  (used by overload-control style policies such as PARD-oc).
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulation.cluster import Cluster
    from .simulation.module import Module
    from .simulation.request import DropReason, Request
    from .simulation.worker import Worker


@dataclass(slots=True)
class DropContext:
    """Everything a policy may inspect when deciding to drop at ``t_b``.

    Slotted and *reused*: each worker keeps one instance and rewrites its
    fields per drawn request (the batching hot path).  Policies must read
    it synchronously inside ``should_drop`` — never retain the object.
    """

    request: Request
    module: "Module"
    worker: "Worker"
    now: float  # t_b: the moment the request is drawn from the queue
    expected_start: float  # t_e: expected start of the batch being formed
    batch_duration: float  # d_k: profiled duration at the planned batch size
    slo: float

    @property
    def elapsed(self) -> float:
        """L_pre + Q_k + W_k so far: time since the client sent the request,
        measured at the expected batch start."""
        return self.expected_start - self.request.sent_at


class RequestQueue(abc.ABC):
    """Queue discipline for a worker's pending requests."""

    @abc.abstractmethod
    def push(self, request: Request, now: float) -> None:
        """Add a request to the queue."""

    @abc.abstractmethod
    def pop(self, now: float) -> Request | None:
        """Remove and return the next request to decide on, or None."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of queued requests."""

    def drain(self, now: float) -> list[Request]:
        """Remove and return all queued requests (used when draining workers)."""
        out = []
        while True:
            r = self.pop(now)
            if r is None:
                return out
            out.append(r)


class FifoQueue(RequestQueue):
    """Arrival-order queue used by all reactive baselines."""

    def __init__(self) -> None:
        self._dq: deque[Request] = deque()

    def push(self, request: Request, now: float) -> None:
        self._dq.append(request)

    def pop(self, now: float) -> Request | None:
        return self._dq.popleft() if self._dq else None

    def __len__(self) -> int:
        return len(self._dq)


class DropPolicy(abc.ABC):
    """Base class of all serving policies."""

    #: Human-readable policy name (used in metrics tables).
    name: str = "base"

    def __init__(self) -> None:
        self.cluster: "Cluster | None" = None

    def bind(self, cluster: "Cluster") -> None:
        """Attach to a cluster; called once before the simulation starts."""
        self.cluster = cluster

    def make_queue(self, module: "Module") -> RequestQueue:
        """Queue discipline for workers of ``module`` (default: FIFO)."""
        return FifoQueue()

    def on_admit(self, request: Request, module: "Module", now: float) -> DropReason | None:
        """Admission-control hook when a request enters a module.

        Return a :class:`DropReason` to reject the request, else None.
        """
        return None

    @abc.abstractmethod
    def should_drop(self, ctx: DropContext) -> DropReason | None:
        """Decide at ``t_b`` whether ``ctx.request`` should be dropped."""

    def on_tick(self, now: float) -> None:
        """Periodic state-synchronisation hook (default: nothing)."""

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return self.name
