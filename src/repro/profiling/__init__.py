"""Offline model profiling (pre-startup step)."""

from .profiler import (
    OfflineProfiler,
    ProfileMeasurement,
    SyntheticGpu,
    profile_model,
)

__all__ = [
    "OfflineProfiler",
    "ProfileMeasurement",
    "SyntheticGpu",
    "profile_model",
]
