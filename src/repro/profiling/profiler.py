"""Offline model profiling (the paper's pre-startup step, §5.1).

Before startup PARD profiles each model's execution duration and
throughput at every batch size.  On real hardware this means timing
forward passes; here the "hardware" is a :class:`SyntheticGpu` whose true
latency curve is hidden behind measurement noise, and the profiler
recovers an affine :class:`~repro.pipeline.profiles.ModelProfile` from
repeated timings by least squares — the same artifact the real system's
profiling step produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pipeline.profiles import ModelProfile


@dataclass(frozen=True)
class SyntheticGpu:
    """Ground-truth device model: affine latency plus lognormal jitter."""

    base: float
    per_item: float
    jitter: float = 0.03  # multiplicative noise sigma
    max_batch: int = 32

    def execute(self, batch_size: int, rng: np.random.Generator) -> float:
        """One timed 'forward pass' at ``batch_size`` (seconds)."""
        if not 1 <= batch_size <= self.max_batch:
            raise ValueError(f"batch size {batch_size} out of range")
        truth = self.base + self.per_item * batch_size
        return float(truth * rng.lognormal(0.0, self.jitter))


@dataclass(frozen=True)
class ProfileMeasurement:
    """Timing samples for one batch size."""

    batch_size: int
    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def p95(self) -> float:
        return float(np.quantile(self.samples, 0.95))


@dataclass
class OfflineProfiler:
    """Measures a device across batch sizes and fits a profile."""

    repeats: int = 30
    warmup: int = 3
    seed: int = 0
    measurements: list[ProfileMeasurement] = field(default_factory=list)

    def measure(
        self, gpu: SyntheticGpu, batch_sizes: list[int] | None = None
    ) -> list[ProfileMeasurement]:
        """Time ``repeats`` executions per batch size (after warmup)."""
        if self.repeats < 2:
            raise ValueError("need at least two repeats per batch size")
        rng = np.random.default_rng(self.seed)
        sizes = batch_sizes or self._default_sizes(gpu.max_batch)
        out = []
        for b in sizes:
            for _ in range(self.warmup):
                gpu.execute(b, rng)
            samples = tuple(gpu.execute(b, rng) for _ in range(self.repeats))
            out.append(ProfileMeasurement(batch_size=b, samples=samples))
        self.measurements = out
        return out

    @staticmethod
    def _default_sizes(max_batch: int) -> list[int]:
        sizes = [1, 2, 4, 8, 16, 32, 64]
        return [s for s in sizes if s <= max_batch] or [1]

    def fit(self, name: str, max_batch: int | None = None) -> ModelProfile:
        """Least-squares affine fit over the measured means."""
        if len(self.measurements) < 2:
            raise ValueError("measure at least two batch sizes before fitting")
        xs = np.array([m.batch_size for m in self.measurements], dtype=float)
        ys = np.array([m.mean for m in self.measurements])
        per_item, base = np.polyfit(xs, ys, 1)
        if base <= 0:
            # Ill-conditioned fit (tiny base swallowed by noise): clamp to
            # the smallest plausible overhead rather than a nonsensical
            # negative intercept.
            base = float(ys.min()) * 0.1
        if per_item <= 0:
            raise ValueError(
                "fitted per-item cost is not positive; measurement noise "
                "exceeds the batch-size signal"
            )
        return ModelProfile(
            name=name,
            base=float(base),
            per_item=float(per_item),
            max_batch=max_batch or int(xs.max()),
        )

    def fit_error(self, gpu: SyntheticGpu, profile: ModelProfile) -> float:
        """Max relative error of the fit against the true curve."""
        errors = []
        for b in range(1, profile.max_batch + 1):
            truth = gpu.base + gpu.per_item * b
            errors.append(abs(profile.duration(b) - truth) / truth)
        return float(max(errors))


def profile_model(
    name: str,
    gpu: SyntheticGpu,
    repeats: int = 30,
    seed: int = 0,
) -> ModelProfile:
    """One-call convenience: measure a device and fit its profile."""
    profiler = OfflineProfiler(repeats=repeats, seed=seed)
    profiler.measure(gpu)
    return profiler.fit(name, max_batch=gpu.max_batch)
