"""Performance-benchmark subsystem (``repro bench``).

Times canonical single-scenario, multi-tenant and sweep workloads on the
simulation core (wall-clock and simulator events/second), writes a
``BENCH_*.json`` report, and verifies that ``--save-summaries`` output for
the committed example scenarios is byte-identical to the golden files in
``benchmarks/goldens/`` — the regression gate for both speed and
determinism.
"""

from .harness import (
    BENCH_SCHEMA,
    GOLDEN_SCENARIOS,
    BenchResult,
    WorkloadResult,
    check_goldens,
    format_table,
    run_bench,
    run_workload,
    write_report,
)
from .workloads import BenchWorkload, bench_workloads

__all__ = [
    "BENCH_SCHEMA",
    "GOLDEN_SCENARIOS",
    "BenchResult",
    "BenchWorkload",
    "WorkloadResult",
    "bench_workloads",
    "check_goldens",
    "format_table",
    "run_bench",
    "run_workload",
    "write_report",
]
