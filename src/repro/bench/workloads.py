"""Canonical benchmark workloads for the simulation core.

Three macro-benchmark components mirror the three ways the repo exercises
the simulator:

* **single-dag** — the paper's DAG application (``da``) under PARD at high
  utilization: entry fan-out, join accounting and per-fork routing on
  every request.
* **multi-tenant** — a shared cluster hosting the DAG app next to the
  ``tm`` chain (they share the ``face_recognition`` pool), with a burst on
  the chain tenant: pool demultiplexing, per-tenant books, cross-app load.
* **sweep-grid** — a fig-10-style apps x policies grid (all four paper
  applications under PARD and Naive), executed serially in-process so the
  number measures the engine rather than process-pool overhead.  Cells
  only consume summaries, so they run lean when the installed package
  supports it.
* **llm-serving** — a shared cluster hosting an LLM chat tenant next to
  the agentic RAG pipeline: iteration-level continuous batching, KV-cache
  reservations and token-SLO goodput accounting on the hot path.  Skipped
  automatically on checkouts that predate the LLM applications.
* **million-request** — one heavily overloaded chain replaying a
  *streaming* constant trace (one million arrivals at full fidelity):
  measures the lazy arrival pipeline end to end, where the old eager
  replay would pre-schedule a million heap events before t=0.  Skipped
  on checkouts that predate streaming traces.

Workloads are declared as plain scenario dicts — the same schema scenario
files use — so the harness is self-contained and runs unmodified against
older checkouts when measuring a baseline.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from ..experiments.runner import run_multi_scenario, run_scenario
from ..experiments.scenario import (
    MultiScenario,
    Scenario,
    SweepSpec,
    scenario_from_dict,
)

#: Trace seconds per workload: full fidelity vs ``--quick``.
_FULL = {"single": 30.0, "multi": 20.0, "sweep": 15.0, "llm": 15.0,
         "million": 200.0}
_QUICK = {"single": 10.0, "multi": 8.0, "sweep": 6.0, "llm": 6.0,
          "million": 20.0}

#: Constant arrival rate of the million-request workload: 5000 req/s x
#: 200 s = one million arrivals at full fidelity (100k under --quick).
_MILLION_RATE = 5000.0


def _single_dag(duration: float) -> dict:
    return {
        "name": "bench-single-dag",
        "app": {"name": "da"},
        "trace": {"name": "tweet", "duration": duration},
        "policy": "PARD",
        "utilization": 0.95,
        "workers": 4,
        "seed": 0,
    }


def _multi_tenant(duration: float) -> dict:
    return {
        "name": "bench-multi-tenant",
        "tenants": [
            {
                "weight": 1.0,
                "scenario": {
                    "name": "dag",
                    "app": {"name": "da"},
                    "policy": "PARD",
                    "trace": {
                        "name": "tweet",
                        "duration": duration,
                        "base_rate": 60,
                    },
                },
            },
            {
                "weight": 1.0,
                "scenario": {
                    "name": "chain",
                    "app": {"name": "tm"},
                    "policy": "PARD",
                    "trace": {
                        "name": "poisson",
                        "duration": duration,
                        "base_rate": 70,
                        "bursts": [
                            {"start": duration * 0.4, "length": duration * 0.25,
                             "factor": 3.0}
                        ],
                    },
                },
            },
        ],
        "seed": 0,
    }


def _sweep_grid(duration: float) -> dict:
    return {
        "name": "bench-sweep-grid",
        "base": {
            "name": "cell",
            "app": {"name": "tm"},
            "trace": {"name": "tweet", "duration": duration},
            "policy": "PARD",
            "utilization": 0.95,
            "workers": 4,
            "seed": 0,
        },
        "axes": {
            "app.name": ["tm", "lv", "gm", "da"],
            "policy": ["PARD", "Naive"],
        },
    }


def _llm_serving(duration: float) -> dict:
    return {
        "name": "bench-llm-serving",
        "tenants": [
            {
                "weight": 1.0,
                "scenario": {
                    "name": "chat",
                    "app": {"name": "llm-chat"},
                    "policy": "PARD",
                    "trace": {
                        "name": "tweet",
                        "duration": duration,
                        "base_rate": 30,
                    },
                    "goodput": {"ttft": 0.35, "tpot": 0.005, "e2e": 8.0},
                },
            },
            {
                "weight": 1.0,
                "scenario": {
                    "name": "rag",
                    "app": {"name": "rag-agentic"},
                    "policy": "PARD",
                    "trace": {
                        "name": "poisson",
                        "duration": duration,
                        "base_rate": 12,
                    },
                    "router": {
                        "kind": "probabilistic",
                        "weights": {"rerank": 0.6, "generate_direct": 0.4},
                    },
                    "goodput": {"ttft": 1.0, "e2e": 10.0},
                },
            },
        ],
        "seed": 0,
    }


def _million_request(duration: float) -> dict:
    return {
        "name": "bench-million-request",
        "app": {"name": "tm"},
        "trace": {
            "name": "constant",
            "duration": duration,
            "base_rate": _MILLION_RATE,
            "stream": True,
        },
        # Deliberately overloaded at fixed provisioning: the run exercises
        # per-arrival admission and proactive dropping at full stream rate
        # without letting queues (and memory) grow with the backlog.
        "policy": "PARD",
        "workers": 8,
        "seed": 0,
    }


#: ``run_scenario`` grew a ``lean`` keyword in this PR; detect it so the
#: identical harness also runs against pre-lean checkouts when measuring
#: a baseline (falling back to full collection — their real cost).
_SUPPORTS_LEAN = "lean" in inspect.signature(run_scenario).parameters


def _supports_streaming() -> bool:
    """True when the installed package knows streaming trace specs.

    Baseline checkouts without the lazy arrival pipeline reject the
    ``stream`` key at parse time; the million-request workload is simply
    absent there.
    """
    from dataclasses import fields as dc_fields

    from ..experiments.scenario import TraceSpec

    return "stream" in {f.name for f in dc_fields(TraceSpec)}


def _supports_llm() -> bool:
    """True when the installed package registers the LLM applications.

    Keeps the harness runnable unmodified against pre-LLM checkouts when
    measuring a baseline — the llm-serving workload is simply absent
    there, and macro comparisons should be read workload-by-workload.
    """
    from ..pipeline.applications import APPLICATIONS

    return "llm-chat" in APPLICATIONS and "rag-agentic" in APPLICATIONS


@dataclass(frozen=True)
class BenchWorkload:
    """One timed macro-benchmark component."""

    name: str
    kind: str  # "single" | "multi" | "sweep"
    run: Callable[[], tuple[int, int]]  # () -> (simulator events, requests)
    cells: int = 1


def _run_single(spec: dict) -> tuple[int, int]:
    result = run_scenario(Scenario.from_dict(spec))
    return result.cluster.sim.processed_events, result.summary.total


def _run_multi(spec: dict) -> tuple[int, int]:
    result = run_multi_scenario(MultiScenario.from_dict(spec))
    return result.cluster.sim.processed_events, result.aggregate.total


def _run_million(spec: dict) -> tuple[int, int]:
    # Lean collection is mandatory here: a million per-request records
    # would dominate the measurement (and the memory) of the very
    # pipeline whose flatness this workload benchmarks.
    result = run_scenario(Scenario.from_dict(spec), lean=True)
    return result.cluster.sim.processed_events, result.summary.total


def _run_sweep(spec: dict) -> tuple[int, int]:
    sweep = SweepSpec(base=scenario_from_dict(spec["base"]),
                      axes=spec["axes"], name=spec["name"])
    events = requests = 0
    for scenario in sweep.expand():
        scenario.validate()
        if _SUPPORTS_LEAN:
            result = run_scenario(scenario, lean=True)
        else:  # pragma: no cover - baseline measurement path
            result = run_scenario(scenario)
        events += result.cluster.sim.processed_events
        requests += result.summary.total
    return events, requests


def bench_workloads(quick: bool = False) -> list[BenchWorkload]:
    """The canonical macro-benchmark suite (scaled down under --quick)."""
    durations = _QUICK if quick else _FULL
    single = _single_dag(durations["single"])
    multi = _multi_tenant(durations["multi"])
    sweep = _sweep_grid(durations["sweep"])
    n_cells = 1
    for values in sweep["axes"].values():
        n_cells *= len(values)
    out = [
        BenchWorkload("single-dag", "single", lambda: _run_single(single)),
        BenchWorkload("multi-tenant", "multi", lambda: _run_multi(multi)),
        BenchWorkload("sweep-grid", "sweep", lambda: _run_sweep(sweep),
                      cells=n_cells),
    ]
    if _supports_llm():
        llm = _llm_serving(durations["llm"])
        out.append(BenchWorkload("llm-serving", "llm",
                                 lambda: _run_multi(llm)))
    if _supports_streaming():
        million = _million_request(durations["million"])
        out.append(BenchWorkload("million-request", "million",
                                 lambda: _run_million(million)))
    return out
