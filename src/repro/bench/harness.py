"""Timing, reporting and determinism checks for ``repro bench``.

The harness runs each canonical workload ``repeats`` times and keeps the
best wall-clock (the usual micro-benchmark discipline: the minimum is the
least-noisy estimate of the true cost on a shared machine), derives
events/second from the simulator's own processed-event counter, and
assembles one JSON-serializable report.  The *macro* number — the sum of
best wall times — is what speedup claims quote.

Determinism is part of the benchmark contract: ``check_goldens`` replays
the committed example scenario files serially and byte-compares their
``--save-summaries`` output with the golden files under
``benchmarks/goldens/``.  A divergence fails the bench (exit code), so a
performance "win" that changes results can never land silently.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .workloads import BenchWorkload, bench_workloads

#: Bump when the report shape changes.
BENCH_SCHEMA = 1

#: Scenario files (under --scenarios) with committed golden summaries.
GOLDEN_SCENARIOS = (
    "burst_failure",
    "diamond_merge",
    "fair_share",
    "lam_sweep",
    "llm_serving",
    "shared_cluster",
)


@dataclass
class WorkloadResult:
    """Timing of one workload: best-of-``runs`` wall clock."""

    name: str
    kind: str
    cells: int
    runs: int
    wall_s: float  # best run
    events: int  # simulator events per run (identical across runs)
    requests: int
    events_per_sec: float


@dataclass
class BenchResult:
    """The full bench report (serialized to ``BENCH_*.json``)."""

    schema: int
    quick: bool
    repeats: int
    python: str
    workloads: list[WorkloadResult] = field(default_factory=list)
    macro_wall_s: float = 0.0
    determinism: dict[str, str] = field(default_factory=dict)
    baseline_macro_wall_s: float | None = None
    speedup: float | None = None

    @property
    def deterministic(self) -> bool:
        return all(v == "ok" for v in self.determinism.values())

    def to_dict(self) -> dict:
        out = asdict(self)
        if self.baseline_macro_wall_s is None:
            out.pop("baseline_macro_wall_s")
            out.pop("speedup")
        return out


def run_workload(workload: BenchWorkload, repeats: int) -> WorkloadResult:
    """Best-of-``repeats`` timing of one workload."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    events = requests = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events, requests = workload.run()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return WorkloadResult(
        name=workload.name,
        kind=workload.kind,
        cells=workload.cells,
        runs=repeats,
        wall_s=round(best, 4),
        events=events,
        requests=requests,
        events_per_sec=round(events / best, 1) if best > 0 else 0.0,
    )


def check_goldens(
    scenarios_dir: str | Path, goldens_dir: str | Path
) -> dict[str, str]:
    """Byte-compare serial summaries of each example scenario vs goldens.

    Returns ``{scenario stem: "ok" | "mismatch" | "missing-golden" |
    "missing-scenario"}``.  Runs serially with no cache — the reference
    execution parallel sweeps must match bitwise.
    """
    from ..experiments.sweep import load_scenario_cells, run_sweep, summaries_text

    scenarios_dir = Path(scenarios_dir)
    goldens_dir = Path(goldens_dir)
    out: dict[str, str] = {}
    for stem in GOLDEN_SCENARIOS:
        scenario_path = scenarios_dir / f"{stem}.json"
        golden_path = goldens_dir / f"{stem}.summaries.json"
        if not scenario_path.is_file():
            out[stem] = "missing-scenario"
            continue
        if not golden_path.is_file():
            out[stem] = "missing-golden"
            continue
        cells = load_scenario_cells(scenario_path)
        results = run_sweep(cells, workers=1, cache_dir=None)
        text = summaries_text(results)
        out[stem] = "ok" if text == golden_path.read_text() else "mismatch"
    return out


def run_bench(
    quick: bool = False,
    repeats: int | None = None,
    profile_top: int = 0,
    scenarios_dir: str | Path | None = "examples/scenarios",
    goldens_dir: str | Path | None = "benchmarks/goldens",
    baseline: dict | None = None,
) -> tuple[BenchResult, str | None]:
    """Run the macro benchmark; returns (report, profile text or None).

    ``repeats`` defaults to 3 (1 under ``--quick``).  ``profile_top > 0``
    additionally runs one profiled pass over every workload and returns
    the top-N cumulative-time report.  ``scenarios_dir``/``goldens_dir``
    locate the determinism check; pass ``None`` to skip it.  ``baseline``
    is a previously written report dict — its macro wall time yields the
    ``speedup`` field.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    result = BenchResult(
        schema=BENCH_SCHEMA,
        quick=quick,
        repeats=repeats,
        python=platform.python_version(),
    )
    for workload in bench_workloads(quick):
        result.workloads.append(run_workload(workload, repeats))
    result.macro_wall_s = round(sum(w.wall_s for w in result.workloads), 4)

    profile_text: str | None = None
    if profile_top > 0:
        profiler = cProfile.Profile()
        profiler.enable()
        for workload in bench_workloads(quick):
            workload.run()
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(profile_top)
        profile_text = buf.getvalue()

    if scenarios_dir is not None and goldens_dir is not None:
        result.determinism = check_goldens(scenarios_dir, goldens_dir)

    if baseline is not None:
        base_macro = baseline.get("macro_wall_s")
        if baseline.get("quick", False) != quick:
            raise ValueError(
                "baseline was measured at a different fidelity "
                f"(quick={baseline.get('quick')}); rerun with matching mode"
            )
        if isinstance(base_macro, (int, float)) and result.macro_wall_s > 0:
            result.baseline_macro_wall_s = float(base_macro)
            result.speedup = round(base_macro / result.macro_wall_s, 2)
    return result, profile_text


def write_report(result: BenchResult, path: str | Path) -> None:
    """Write the report JSON (stable key order, trailing newline)."""
    Path(path).write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def format_table(result: BenchResult) -> str:
    """Human-readable summary printed by the CLI."""
    lines = [
        f"{'workload':<14} {'cells':>5} {'runs':>4} {'best wall':>10} "
        f"{'events':>9} {'events/s':>10}"
    ]
    for w in result.workloads:
        lines.append(
            f"{w.name:<14} {w.cells:>5} {w.runs:>4} {w.wall_s:>9.3f}s "
            f"{w.events:>9} {w.events_per_sec:>10.0f}"
        )
    lines.append(f"{'macro':<14} {'':>5} {'':>4} {result.macro_wall_s:>9.3f}s")
    if result.speedup is not None:
        lines.append(
            f"speedup vs baseline ({result.baseline_macro_wall_s:.3f}s): "
            f"{result.speedup:.2f}x"
        )
    if result.determinism:
        status = ", ".join(f"{k}={v}" for k, v in result.determinism.items())
        lines.append(f"determinism: {status}")
    return "\n".join(lines)
